"""Instance growth (``INSgrow``, Algorithm 2).

Instance growth is the operation the paper puts in place of the projected
database used by PrefixSpan-style miners: given the *leftmost* support set
``I`` of a pattern ``P`` and an event ``e``, it produces the leftmost support
set of ``P ∘ e`` by extending the instances of ``I`` greedily, sequence by
sequence, in the right-shift order.

The greedy rule (lines 3–7 of Algorithm 2) extends each instance with the
smallest position of ``e`` that is

* strictly to the right of the instance's own last landmark position, and
* strictly to the right of the position consumed by the previously extended
  instance of the same sequence (``last_position``), which guarantees the
  extended instances stay pairwise non-overlapping.

Lemma 4 proves this produces a leftmost support set — i.e. the greedy choice
achieves the maximum number of non-overlapping instances.
"""

from __future__ import annotations

from typing import Optional

from repro.core.constraints import GapConstraint
from repro.core.instance import Instance
from repro.core.support import SupportSet
from repro.db.index import NO_POSITION, InvertedEventIndex
from repro.db.sequence import Event


def ins_grow(
    index: InvertedEventIndex,
    support_set: SupportSet,
    event: Event,
    constraint: Optional[GapConstraint] = None,
) -> SupportSet:
    """Algorithm 2 (``INSgrow``): grow a leftmost support set by one event.

    Parameters
    ----------
    index:
        Inverted event index of the database being mined.
    support_set:
        The leftmost support set of some pattern ``P``.  The instances must
        already be in right-shift order (which :class:`SupportSet`
        guarantees).
    event:
        The event ``e`` to append; the result describes ``P ∘ e``.
    constraint:
        Optional gap constraint; when given, the position chosen for ``e``
        must additionally satisfy ``constraint`` relative to the instance's
        previous landmark position.  See :mod:`repro.core.constraints` for
        the semantics caveat of the constrained variant.

    Returns
    -------
    SupportSet
        The leftmost support set of ``P ∘ e`` (its size is ``sup(P ∘ e)``).
    """
    grown_pattern = support_set.pattern.grow(event)
    extended = []
    # Group instances by sequence in one pass; the support set is already in
    # right-shift order, so each group stays sorted by last landmark position.
    groups = {}
    for instance in support_set:
        groups.setdefault(instance.seq_index, []).append(instance)
    for i in sorted(groups):
        last_position = 0
        for instance in groups[i]:
            lowest = max(last_position, instance.last)
            if constraint is not None:
                lowest = max(lowest, constraint.lowest_allowed(instance.last))
            position = index.next_position(i, event, lowest)
            if position is NO_POSITION or position == NO_POSITION:
                # No occurrence of `event` remains to the right: later
                # instances of this sequence end even further right, so the
                # scan of this sequence can stop (line 5 of Algorithm 2).
                break
            if constraint is not None and not constraint.allows(instance.last, int(position)):
                # Under a maximum-gap constraint the nearest occurrence may be
                # too far away for *this* instance while still usable by a
                # later one, so skip rather than break.
                continue
            last_position = int(position)
            extended.append(instance.extend(last_position))
    return SupportSet(grown_pattern, extended)


def grow_with_pattern(
    index: InvertedEventIndex,
    support_set: SupportSet,
    suffix,
    constraint: Optional[GapConstraint] = None,
) -> SupportSet:
    """Grow a support set with every event of ``suffix`` in order (``P ∘ Q``).

    Used by the closure checker to evaluate insert/prepend extensions: the
    leftmost support set of ``e1..ej e'`` is grown with the remaining suffix
    ``e(j+1) .. em`` of the original pattern.
    """
    from repro.core.pattern import as_pattern

    result = support_set
    for event in as_pattern(suffix):
        result = ins_grow(index, result, event, constraint=constraint)
    return result
