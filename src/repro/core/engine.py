"""Support-set engine selection (full landmarks vs compressed triples).

The miners and the closure checker never look inside an instance during the
DFS: they read supports, patterns and landmark borders, and they grow sets
with Algorithm 2.  Both support-set representations expose that interface —

* the **full-landmark** engine (:class:`~repro.core.support.SupportSet`,
  :func:`~repro.core.instance_growth.ins_grow`) keeps ``m``-wide landmark
  rows, which the public result needs when ``store_instances=True``;
* the **compressed** engine (Section III-D;
  :class:`~repro.core.compressed.CompressedSupportSet`,
  :func:`~repro.core.compressed.ins_grow_compressed`) keeps constant-space
  ``(i, l1, lm)`` triples, the right choice whenever only patterns and
  supports are reported.

A :class:`SupportEngine` bundles the pair of operations the DFS needs
(initial size-1 set, one-event growth) for one representation;
:func:`engine_for` maps ``MinerConfig.store_instances`` to the engine that
serves it.  Both engines produce identical patterns and supports — the
randomized engine-equivalence tests pin that invariant.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import TYPE_CHECKING, Any

from repro.core.compressed import (
    CompressedSupportSet,
    initial_compressed_support_set,
    ins_grow_compressed,
)
from repro.core.instance_growth import ins_grow
from repro.core.support import SupportSet, initial_support_set

if TYPE_CHECKING:
    from repro.core.spill import SpillPolicy
    from repro.db.index import InvertedEventIndex

#: Either support-set representation; everything the DFS and the closure
#: checker touch (``pattern``, ``support``, ``border_arrays()``,
#: ``per_sequence_counts()``) is common to both.
SupportSetLike = SupportSet | CompressedSupportSet

#: ``initial(index, event)`` — leftmost support set of a size-1 pattern.
InitialFn = Callable[["InvertedEventIndex", Any], SupportSetLike]

#: ``grow(index, support_set, event, constraint=None)`` — Algorithm 2.  The
#: concrete growth functions take their own representation's set type, so the
#: parameter list is erased here; the pairing inside one engine is what keeps
#: the calls sound.
GrowFn = Callable[..., SupportSetLike]


class SupportEngine:
    """One support-set representation's growth operations.

    Attributes
    ----------
    name:
        Stable identifier (``"full-landmark"`` / ``"compressed"``) used in
        diagnostics and benchmark reports.
    initial:
        ``initial(index, event)`` — leftmost support set of a size-1 pattern.
    grow:
        ``grow(index, support_set, event, constraint=None)`` — Algorithm 2.
    stores_landmarks:
        True when the sets carry full landmarks (needed to report instances).
    """

    __slots__ = ("name", "initial", "grow", "stores_landmarks")

    def __init__(
        self,
        name: str,
        initial: InitialFn,
        grow: GrowFn,
        stores_landmarks: bool,
    ) -> None:
        self.name = name
        self.initial = initial
        self.grow = grow
        self.stores_landmarks = stores_landmarks

    def __repr__(self) -> str:
        return f"SupportEngine({self.name!r})"

    def with_spill(self, policy: "SpillPolicy") -> SupportEngine:
        """This engine with every produced set routed through ``policy``.

        Spilling wraps the *engine*, not a representation: both the
        full-landmark and compressed engines come out of here with
        over-budget frontiers remapped onto disk
        (:mod:`repro.core.spill`), and the DFS cannot tell the difference.
        """
        initial = self.initial
        grow = self.grow
        maybe_spill = policy.maybe_spill

        def initial_spilling(index: "InvertedEventIndex", event: Any) -> SupportSetLike:
            return maybe_spill(initial(index, event))

        def grow_spilling(*args: Any, **kwargs: Any) -> SupportSetLike:
            return maybe_spill(grow(*args, **kwargs))

        return SupportEngine(
            f"{self.name}+spill", initial_spilling, grow_spilling, self.stores_landmarks
        )


#: Engine over full-landmark :class:`SupportSet` rows.
FULL_LANDMARK_ENGINE = SupportEngine(
    "full-landmark", initial_support_set, ins_grow, stores_landmarks=True
)

#: Engine over compressed ``(i, l1, lm)`` triples.
COMPRESSED_ENGINE = SupportEngine(
    "compressed", initial_compressed_support_set, ins_grow_compressed, stores_landmarks=False
)


def engine_for(store_instances: bool) -> SupportEngine:
    """The engine serving a miner configuration.

    ``store_instances=True`` needs full landmarks in the reported support
    sets; everything else runs on constant-space compressed triples.
    """
    return FULL_LANDMARK_ENGINE if store_instances else COMPRESSED_ENGINE
