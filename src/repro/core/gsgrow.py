"""GSgrow (Algorithm 3): mining all frequent repetitive gapped subsequences.

GSgrow couples the depth-first pattern-growth traversal familiar from
PrefixSpan with the instance-growth operation of Algorithm 2: every DFS node
carries the leftmost support set of its pattern, so the support of every
child ``P ∘ e`` is obtained with a single ``INSgrow`` call, and the Apriori
property (Theorem 1) prunes the traversal as soon as the support drops below
``min_sup``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Iterator, Sequence as PySequence

from repro.core.constraints import GapConstraint
from repro.core.engine import SupportEngine, SupportSetLike, engine_for
from repro.core.results import MinedPattern, MiningResult
from repro.db.database import SequenceDatabase
from repro.db.index import InvertedEventIndex
from repro.db.sequence import Event
from repro.obs import MetricsRegistry


@dataclass
class MinerConfig:
    """Shared configuration of :class:`GSgrow` and :class:`CloGSgrow`.

    Parameters
    ----------
    min_sup:
        Support threshold; a pattern is frequent iff ``sup(P) >= min_sup``.
    max_length:
        Optional cap on pattern length (DFS depth).  ``None`` reproduces the
        paper exactly; a cap is useful to bound worst-case benchmarks.
    max_patterns:
        Optional cap on the number of reported patterns; mining stops once it
        is reached.  ``None`` means unlimited.
    store_instances:
        Keep the leftmost support set (and per-sequence counts) of every
        reported pattern.  This selects the mining engine: ``False`` (the
        default) runs the whole DFS on compressed ``(i, l1, lm)`` triples
        (Section III-D — constant space per instance, no landmark copies)
        and reported patterns carry pattern + support only; ``True`` runs on
        full ``m``-wide landmark rows so every
        :class:`~repro.core.results.MinedPattern` also carries its
        ``support_set`` and ``per_sequence`` counts, at a memory cost
        proportional to total support times pattern length.  Both engines
        report identical patterns and supports.
    constraint:
        Optional gap constraint (see :mod:`repro.core.constraints`).
    events:
        Restrict growth to these events.  ``None`` uses every event whose
        total occurrence count reaches ``min_sup`` (an exact Apriori filter).
    db_backend:
        Storage backend used when the miner builds an index itself from a
        plain database: ``None``/``"ram"`` (default) or ``"disk"`` (mmap'd
        segments, see :mod:`repro.db.backend`).  Ignored when a pre-built
        :class:`~repro.db.index.InvertedEventIndex` is passed — the index
        already owns its backend.
    db_dir:
        Directory for a ``"disk"`` backend (a temp dir when ``None``).
    spill_budget:
        Per-support-set byte budget: any DFS frontier set whose columns
        exceed it is spilled onto disk (:mod:`repro.core.spill`) and read
        back through an unlinked read-only mapping.  ``None`` disables
        spilling.  Results are identical either way.
    spill_dir:
        Filesystem used for spill files (the system temp dir when ``None``).
    """

    min_sup: int = 2
    max_length: int | None = None
    max_patterns: int | None = None
    store_instances: bool = False
    constraint: GapConstraint | None = None
    events: Iterable[Event] | None = None
    db_backend: str | None = None
    db_dir: str | None = None
    spill_budget: int | None = None
    spill_dir: str | None = None

    def __post_init__(self):
        if self.min_sup < 1:
            raise ValueError(f"min_sup must be >= 1, got {self.min_sup}")
        if self.max_length is not None and self.max_length < 1:
            raise ValueError(f"max_length must be >= 1, got {self.max_length}")
        if self.max_patterns is not None and self.max_patterns < 0:
            raise ValueError(f"max_patterns must be >= 0, got {self.max_patterns}")
        if self.spill_budget is not None and self.spill_budget < 1:
            raise ValueError(f"spill_budget must be >= 1, got {self.spill_budget}")
        if self.db_backend not in (None, "ram", "disk"):
            raise ValueError(
                f"db_backend must be None, 'ram' or 'disk', got {self.db_backend!r}"
            )


@dataclass
class MiningStats:
    """Counters and per-phase durations describing one mining run.

    The counters are maintained as plain attributes by the DFS (no registry
    probe per node); :meth:`as_dict` renders them — keys sorted, phases in a
    nested sorted mapping — as the ``MiningResult.stats`` payload, and the
    miner mirrors them into its :class:`~repro.obs.MetricsRegistry` once per
    run so external observers (the stream miner, benchmarks) aggregate them.
    """

    patterns_reported: int = 0
    nodes_visited: int = 0
    ins_grow_calls: int = 0
    nodes_pruned_infrequent: int = 0
    nodes_pruned_lbcheck: int = 0
    closure_checks: int = 0
    extension_evaluations: int = 0
    cache_evictions: int = 0
    #: Wall-clock (monotonic) seconds per mining phase: ``prepare`` (index +
    #: candidate events + closure-checker build), ``dfs`` (the traversal)
    #: and ``total``.
    phase_seconds: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """Counters plus phase durations, keys sorted for stable serialization."""
        return {
            "cache_evictions": self.cache_evictions,
            "closure_checks": self.closure_checks,
            "extension_evaluations": self.extension_evaluations,
            "ins_grow_calls": self.ins_grow_calls,
            "nodes_pruned_infrequent": self.nodes_pruned_infrequent,
            "nodes_pruned_lbcheck": self.nodes_pruned_lbcheck,
            "nodes_visited": self.nodes_visited,
            "patterns_reported": self.patterns_reported,
            "phase_seconds": {
                phase: self.phase_seconds[phase] for phase in sorted(self.phase_seconds)
            },
        }


class GSgrow:
    """The GSgrow miner (Algorithm 3).

    Example
    -------
    >>> from repro.db import SequenceDatabase
    >>> db = SequenceDatabase.from_strings(["ABCABCA", "AABBCCC"])
    >>> result = GSgrow(min_sup=4).mine(db)
    >>> result.support_of("AB")
    4
    """

    algorithm_name = "GSgrow"

    def __init__(self, min_sup: int = 2, *, obs: MetricsRegistry | None = None, **kwargs):
        self.config = MinerConfig(min_sup=min_sup, **kwargs)
        self.stats = MiningStats()
        self.obs = obs if obs is not None else MetricsRegistry()
        self._engine: SupportEngine = engine_for(self.config.store_instances)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def mine(
        self,
        database: SequenceDatabase | InvertedEventIndex,
        *,
        on_pattern: Callable[[MinedPattern], None] | None = None,
    ) -> MiningResult:
        """Mine all frequent patterns of ``database``.

        Returns a :class:`~repro.core.results.MiningResult` with one entry
        per frequent pattern (in DFS discovery order).  When ``on_pattern``
        is given it is invoked with each :class:`MinedPattern` the moment the
        DFS reports it — the streaming delivery seam used by
        :mod:`repro.stream`; the final result is unchanged by the callback.
        """
        result = MiningResult(min_sup=self.config.min_sup, algorithm=self.algorithm_name)
        for mined in self.mine_iter(database):
            result.add(mined)
            if on_pattern is not None:
                on_pattern(mined)
        result.stats = self.stats.as_dict()
        return result

    def mine_iter(
        self, database: SequenceDatabase | InvertedEventIndex
    ) -> Iterator[MinedPattern]:
        """Generator form of :meth:`mine`.

        Yields each :class:`MinedPattern` as the DFS discovers it, in the
        exact order :meth:`mine` would collect them, so patterns stream out
        of a long-running mining pass instead of materialising only at the
        end.  Abandoning the generator aborts the traversal.
        """
        index = self._as_index(database)
        self.stats = MiningStats()
        self._engine = engine_for(self.config.store_instances)
        if self.config.spill_budget is not None:
            from repro.core.spill import SpillPolicy

            policy = SpillPolicy(
                self.config.spill_budget, directory=self.config.spill_dir, obs=self.obs
            )
            self._engine = self._engine.with_spill(policy)
        clock = self.obs.clock
        started = clock()
        try:
            self._prepare(index)
            events = self._candidate_events(index)
            self.stats.phase_seconds["prepare"] = clock() - started
            dfs_started = clock()
            budget = self.config.max_patterns
            for event in events:
                support_set = self._engine.initial(index, event)
                for mined in self._mine_fre(index, support_set, events, [support_set]):
                    if budget is not None and self.stats.patterns_reported >= budget:
                        return
                    self.stats.patterns_reported += 1
                    yield mined
            self.stats.phase_seconds["dfs"] = clock() - dfs_started
        finally:
            self.stats.phase_seconds["total"] = clock() - started
            self._record_obs()

    def _record_obs(self) -> None:
        """Mirror this run's counters and phase timings into the registry.

        Runs once per mining pass (never inside the DFS), so the per-node cost
        of observability is zero; all instruments update under one registry
        lock acquisition so a concurrent snapshot never sees half a run.
        """
        obs = self.obs
        if not obs.enabled:
            return
        stats = self.stats
        with obs.locked():
            obs.counter("mine.runs").inc()
            obs.counter("mine.patterns_reported").inc(stats.patterns_reported)
            obs.counter("mine.nodes_visited").inc(stats.nodes_visited)
            obs.counter("mine.ins_grow_calls").inc(stats.ins_grow_calls)
            obs.counter("mine.nodes_pruned_infrequent").inc(stats.nodes_pruned_infrequent)
            obs.counter("mine.nodes_pruned_lbcheck").inc(stats.nodes_pruned_lbcheck)
            obs.counter("mine.closure_checks").inc(stats.closure_checks)
            obs.counter("mine.extension_evaluations").inc(stats.extension_evaluations)
            obs.counter("mine.cache_evictions").inc(stats.cache_evictions)
            for phase, seconds in stats.phase_seconds.items():
                obs.histogram(f"mine.phase.{phase}.seconds").observe(seconds)  # reprolint: disable=RL008 -- phases are the fixed prepare/dfs/total set MiningStats records, each expanding to a conformant name

    # ------------------------------------------------------------------
    # DFS (subroutine mineFre)
    # ------------------------------------------------------------------
    def _mine_fre(
        self,
        index: InvertedEventIndex,
        support_set: SupportSetLike,
        events: list[Event],
        prefix_sets: list[SupportSetLike],
    ) -> Iterator[MinedPattern]:
        """Recursive DFS over the pattern space (lines 6–10 of Algorithm 3)."""
        self.stats.nodes_visited += 1
        if support_set.support < self.config.min_sup:
            self.stats.nodes_pruned_infrequent += 1
            return
        if self._accept(support_set, index, prefix_sets, events):
            yield self._as_mined(support_set)
        if self._should_stop_growing(support_set, index, prefix_sets, events):
            return
        if self.config.max_length is not None and len(support_set.pattern) >= self.config.max_length:
            return
        for event in events:
            grown = self._grow_child(index, support_set, event)
            if grown.support < self.config.min_sup:
                self.stats.nodes_pruned_infrequent += 1
                continue
            yield from self._mine_fre(index, grown, events, prefix_sets + [grown])

    # ------------------------------------------------------------------
    # Hooks overridden by CloGSgrow
    # ------------------------------------------------------------------
    def _prepare(self, index: InvertedEventIndex) -> None:
        """Per-run setup before the DFS starts (CloGSgrow builds its checker here)."""

    def _grow_child(
        self, index: InvertedEventIndex, support_set: SupportSetLike, event: Event
    ) -> SupportSetLike:
        """Compute the support set of ``P ∘ e`` (CloGSgrow reuses cached ones)."""
        self.stats.ins_grow_calls += 1
        return self._engine.grow(index, support_set, event, constraint=self.config.constraint)

    def _accept(
        self,
        support_set: SupportSetLike,
        index: InvertedEventIndex,
        prefix_sets: list[SupportSetLike],
        events: list[Event],
    ) -> bool:
        """Whether to report the (frequent) pattern of ``support_set``."""
        return True

    def _should_stop_growing(
        self,
        support_set: SupportSetLike,
        index: InvertedEventIndex,
        prefix_sets: list[SupportSetLike],
        events: list[Event],
    ) -> bool:
        """Whether the DFS subtree below this pattern can be pruned."""
        return False

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _as_mined(self, support_set: SupportSetLike) -> MinedPattern:
        if self.config.store_instances:
            return MinedPattern(
                pattern=support_set.pattern,
                support=support_set.support,
                support_set=support_set,
                per_sequence=support_set.per_sequence_counts(),
            )
        return MinedPattern(pattern=support_set.pattern, support=support_set.support)

    def _candidate_events(self, index: InvertedEventIndex) -> list[Event]:
        if self.config.events is not None:
            return sorted(set(self.config.events), key=repr)
        return index.frequent_events(self.config.min_sup)

    def _as_index(self, database) -> InvertedEventIndex:
        if isinstance(database, InvertedEventIndex):
            return database
        if isinstance(database, SequenceDatabase):
            return InvertedEventIndex(
                database,
                backend=self.config.db_backend,
                backend_dir=self.config.db_dir,
            )
        raise TypeError(
            f"expected a SequenceDatabase or InvertedEventIndex, got {type(database).__name__}"
        )


def mine_all(
    database: SequenceDatabase | InvertedEventIndex,
    min_sup: int,
    *,
    on_pattern: Callable[[MinedPattern], None] | None = None,
    **kwargs,
) -> MiningResult:
    """Mine all frequent repetitive gapped subsequences (functional façade).

    Equivalent to ``GSgrow(min_sup, **kwargs).mine(database, on_pattern=...)``.

    Example
    -------
    >>> from repro.db import SequenceDatabase
    >>> db = SequenceDatabase.from_strings(["AABCDABB", "ABCD"])
    >>> result = mine_all(db, 2)
    >>> len(result), result.support_of("AB")
    (20, 4)
    """
    return GSgrow(min_sup, **kwargs).mine(database, on_pattern=on_pattern)
