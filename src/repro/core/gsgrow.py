"""GSgrow (Algorithm 3): mining all frequent repetitive gapped subsequences.

GSgrow couples the depth-first pattern-growth traversal familiar from
PrefixSpan with the instance-growth operation of Algorithm 2: every DFS node
carries the leftmost support set of its pattern, so the support of every
child ``P ∘ e`` is obtained with a single ``INSgrow`` call, and the Apriori
property (Theorem 1) prunes the traversal as soon as the support drops below
``min_sup``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence as PySequence, Union

from repro.core.constraints import GapConstraint
from repro.core.instance_growth import ins_grow
from repro.core.results import MinedPattern, MiningResult
from repro.core.support import SupportSet, initial_support_set
from repro.db.database import SequenceDatabase
from repro.db.index import InvertedEventIndex
from repro.db.sequence import Event


@dataclass
class MinerConfig:
    """Shared configuration of :class:`GSgrow` and :class:`CloGSgrow`.

    Parameters
    ----------
    min_sup:
        Support threshold; a pattern is frequent iff ``sup(P) >= min_sup``.
    max_length:
        Optional cap on pattern length (DFS depth).  ``None`` reproduces the
        paper exactly; a cap is useful to bound worst-case benchmarks.
    max_patterns:
        Optional cap on the number of reported patterns; mining stops once it
        is reached.  ``None`` means unlimited.
    store_instances:
        Keep the leftmost support set (and per-sequence counts) of every
        reported pattern.  Costs memory proportional to the total support.
    constraint:
        Optional gap constraint (see :mod:`repro.core.constraints`).
    events:
        Restrict growth to these events.  ``None`` uses every event whose
        total occurrence count reaches ``min_sup`` (an exact Apriori filter).
    """

    min_sup: int = 2
    max_length: Optional[int] = None
    max_patterns: Optional[int] = None
    store_instances: bool = False
    constraint: Optional[GapConstraint] = None
    events: Optional[Iterable[Event]] = None

    def __post_init__(self):
        if self.min_sup < 1:
            raise ValueError(f"min_sup must be >= 1, got {self.min_sup}")
        if self.max_length is not None and self.max_length < 1:
            raise ValueError(f"max_length must be >= 1, got {self.max_length}")
        if self.max_patterns is not None and self.max_patterns < 0:
            raise ValueError(f"max_patterns must be >= 0, got {self.max_patterns}")


class _PatternBudgetExhausted(Exception):
    """Internal signal raised when ``max_patterns`` has been reached."""


@dataclass
class MiningStats:
    """Counters describing one mining run (reported by the benchmarks)."""

    patterns_reported: int = 0
    nodes_visited: int = 0
    ins_grow_calls: int = 0
    nodes_pruned_infrequent: int = 0
    nodes_pruned_lbcheck: int = 0
    closure_checks: int = 0
    extension_evaluations: int = 0

    def as_dict(self) -> dict:
        return {
            "patterns_reported": self.patterns_reported,
            "nodes_visited": self.nodes_visited,
            "ins_grow_calls": self.ins_grow_calls,
            "nodes_pruned_infrequent": self.nodes_pruned_infrequent,
            "nodes_pruned_lbcheck": self.nodes_pruned_lbcheck,
            "closure_checks": self.closure_checks,
            "extension_evaluations": self.extension_evaluations,
        }


class GSgrow:
    """The GSgrow miner (Algorithm 3).

    Example
    -------
    >>> from repro.db import SequenceDatabase
    >>> db = SequenceDatabase.from_strings(["ABCABCA", "AABBCCC"])
    >>> result = GSgrow(min_sup=4).mine(db)
    >>> result.support_of("AB")
    4
    """

    algorithm_name = "GSgrow"

    def __init__(self, min_sup: int = 2, **kwargs):
        self.config = MinerConfig(min_sup=min_sup, **kwargs)
        self.stats = MiningStats()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def mine(self, database: Union[SequenceDatabase, InvertedEventIndex]) -> MiningResult:
        """Mine all frequent patterns of ``database``.

        Returns a :class:`~repro.core.results.MiningResult` with one entry
        per frequent pattern (in DFS discovery order).
        """
        index = self._as_index(database)
        self.stats = MiningStats()
        result = MiningResult(min_sup=self.config.min_sup, algorithm=self.algorithm_name)
        events = self._candidate_events(index)
        try:
            for event in events:
                support_set = initial_support_set(index, event)
                self._mine_fre(index, support_set, events, result, prefix_sets=[support_set])
        except _PatternBudgetExhausted:
            pass
        return result

    # ------------------------------------------------------------------
    # DFS (subroutine mineFre)
    # ------------------------------------------------------------------
    def _mine_fre(
        self,
        index: InvertedEventIndex,
        support_set: SupportSet,
        events: List[Event],
        result: MiningResult,
        prefix_sets: List[SupportSet],
    ) -> None:
        """Recursive DFS over the pattern space (lines 6–10 of Algorithm 3)."""
        self.stats.nodes_visited += 1
        if support_set.support < self.config.min_sup:
            self.stats.nodes_pruned_infrequent += 1
            return
        if self._accept(support_set, index, prefix_sets, events):
            self._report(support_set, result)
        if self._should_stop_growing(support_set, index, prefix_sets, events):
            return
        if self.config.max_length is not None and len(support_set.pattern) >= self.config.max_length:
            return
        for event in events:
            grown = self._grow_child(index, support_set, event)
            if grown.support < self.config.min_sup:
                self.stats.nodes_pruned_infrequent += 1
                continue
            self._mine_fre(index, grown, events, result, prefix_sets + [grown])

    # ------------------------------------------------------------------
    # Hooks overridden by CloGSgrow
    # ------------------------------------------------------------------
    def _grow_child(
        self, index: InvertedEventIndex, support_set: SupportSet, event: Event
    ) -> SupportSet:
        """Compute the support set of ``P ∘ e`` (CloGSgrow reuses cached ones)."""
        self.stats.ins_grow_calls += 1
        return ins_grow(index, support_set, event, constraint=self.config.constraint)

    def _accept(
        self,
        support_set: SupportSet,
        index: InvertedEventIndex,
        prefix_sets: List[SupportSet],
        events: List[Event],
    ) -> bool:
        """Whether to report the (frequent) pattern of ``support_set``."""
        return True

    def _should_stop_growing(
        self,
        support_set: SupportSet,
        index: InvertedEventIndex,
        prefix_sets: List[SupportSet],
        events: List[Event],
    ) -> bool:
        """Whether the DFS subtree below this pattern can be pruned."""
        return False

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _report(self, support_set: SupportSet, result: MiningResult) -> None:
        if self.config.max_patterns is not None and len(result) >= self.config.max_patterns:
            raise _PatternBudgetExhausted()
        if self.config.store_instances:
            mined = MinedPattern(
                pattern=support_set.pattern,
                support=support_set.support,
                support_set=support_set,
                per_sequence=support_set.per_sequence_counts(),
            )
        else:
            mined = MinedPattern(pattern=support_set.pattern, support=support_set.support)
        result.add(mined)
        self.stats.patterns_reported += 1

    def _candidate_events(self, index: InvertedEventIndex) -> List[Event]:
        if self.config.events is not None:
            return sorted(set(self.config.events), key=repr)
        return index.frequent_events(self.config.min_sup)

    @staticmethod
    def _as_index(database) -> InvertedEventIndex:
        if isinstance(database, InvertedEventIndex):
            return database
        if isinstance(database, SequenceDatabase):
            return InvertedEventIndex(database)
        raise TypeError(
            f"expected a SequenceDatabase or InvertedEventIndex, got {type(database).__name__}"
        )


def mine_all(
    database: Union[SequenceDatabase, InvertedEventIndex],
    min_sup: int,
    **kwargs,
) -> MiningResult:
    """Mine all frequent repetitive gapped subsequences (functional façade).

    Equivalent to ``GSgrow(min_sup, **kwargs).mine(database)``.
    """
    return GSgrow(min_sup, **kwargs).mine(database)
