"""CloGSgrow (Algorithm 4): mining closed frequent patterns.

CloGSgrow is GSgrow with two modifications at every frequent DFS node
(lines 6–7 of Algorithm 4):

* a pattern is reported only if closure checking (``CCheck``, Theorem 4)
  says it is closed, and
* the DFS subtree is pruned entirely when landmark border checking
  (``LBCheck``, Theorem 5) finds an equal-support extension whose leftmost
  support set does not shift the landmark border to the right.

Both checks are implemented in :mod:`repro.core.closure`; this module wires
them into the DFS inherited from :class:`~repro.core.gsgrow.GSgrow`.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.core.closure import ClosureChecker, ClosureDecision
from repro.core.gsgrow import GSgrow
from repro.core.instance_growth import ins_grow
from repro.core.results import MiningResult
from repro.core.support import SupportSet
from repro.db.database import SequenceDatabase
from repro.db.index import InvertedEventIndex
from repro.db.sequence import Event


class CloGSgrow(GSgrow):
    """The CloGSgrow closed-pattern miner (Algorithm 4).

    Accepts every :class:`~repro.core.gsgrow.MinerConfig` option of GSgrow
    plus ``enable_lbcheck`` (default ``True``); disabling it keeps the output
    identical but removes the search-space pruning — the configuration used
    by the ablation benchmark to quantify Theorem 5's benefit.

    With ``max_length=None`` (the default) the output is exactly the paper's
    closed pattern set.  When a ``max_length`` cap is given, closedness is
    evaluated *within the capped pattern universe*: patterns at the cap
    length are reported whenever they are frequent (their one-event
    extensions fall outside the universe), and shorter patterns are checked
    against extensions as usual.  Landmark border pruning remains enabled
    under a cap; in rare boundary cases it can remove a cap-length pattern
    whose equal-support representative is longer than the cap — run with
    ``enable_lbcheck=False`` if exact capped-closed semantics matter more
    than speed.

    Example
    -------
    >>> from repro.db import SequenceDatabase
    >>> db = SequenceDatabase.from_strings(["ABCABCA", "AABBCCC"])
    >>> closed = CloGSgrow(min_sup=4).mine(db)
    >>> "ABC" in closed and "AB" not in closed
    True
    """

    algorithm_name = "CloGSgrow"

    def __init__(self, min_sup: int = 2, *, enable_lbcheck: bool = True, **kwargs):
        super().__init__(min_sup, **kwargs)
        self.enable_lbcheck = enable_lbcheck
        self._checker: Optional[ClosureChecker] = None
        self._decision_cache: Dict[tuple, ClosureDecision] = {}
        # Grown support sets computed while closure-checking a node, reused by
        # the DFS growth step so each P ∘ e is only instance-grown once.
        self._append_cache: Dict[tuple, Dict[Event, SupportSet]] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def mine(self, database: Union[SequenceDatabase, InvertedEventIndex]) -> MiningResult:
        """Mine all closed frequent patterns of ``database``."""
        index = self._as_index(database)
        self._checker = ClosureChecker(
            index, enable_lbcheck=self.enable_lbcheck, constraint=self.config.constraint
        )
        self._decision_cache = {}
        self._append_cache = {}
        return super().mine(index)

    # ------------------------------------------------------------------
    # GSgrow hooks
    # ------------------------------------------------------------------
    def _grow_child(self, index, support_set: SupportSet, event: Event) -> SupportSet:
        cached = self._append_cache.get(support_set.pattern.events, {}).get(event)
        if cached is not None:
            return cached
        return super()._grow_child(index, support_set, event)

    def _accept(
        self,
        support_set: SupportSet,
        index: InvertedEventIndex,
        prefix_sets: List[SupportSet],
        events: List[Event],
    ) -> bool:
        decision = self._decide(support_set, index, prefix_sets, events)
        return decision.closed

    def _should_stop_growing(
        self,
        support_set: SupportSet,
        index: InvertedEventIndex,
        prefix_sets: List[SupportSet],
        events: List[Event],
    ) -> bool:
        decision = self._decide(support_set, index, prefix_sets, events)
        if decision.prunable:
            self.stats.nodes_pruned_lbcheck += 1
        return decision.prunable

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _decide(
        self,
        support_set: SupportSet,
        index: InvertedEventIndex,
        prefix_sets: List[SupportSet],
        events: List[Event],
    ) -> ClosureDecision:
        """Run (and cache) the closure decision for the current DFS node.

        ``_accept`` and ``_should_stop_growing`` are called back-to-back for
        the same node, so the decision is cached per pattern to avoid paying
        for the extension evaluation twice.
        """
        key = support_set.pattern.events
        cached = self._decision_cache.get(key)
        if cached is not None:
            return cached
        assert self._checker is not None, "mine() must be called before the DFS hooks"
        if (
            self.config.max_length is not None
            and len(support_set.pattern) >= self.config.max_length
        ):
            # Capped closedness: every single-event extension falls outside
            # the mined pattern universe, so the pattern is reported as
            # closed-within-the-cap; the DFS depth cap stops further growth.
            decision = ClosureDecision(closed=True, prunable=False)
            self._decision_cache[key] = decision
            return decision
        # Pre-compute the append-extension support sets once: CCheck needs
        # their sizes and the DFS growth step reuses the sets themselves.
        grown_children: Dict[Event, SupportSet] = {}
        append_supports: Dict[Event, int] = {}
        for event in events:
            self.stats.ins_grow_calls += 1
            grown = ins_grow(index, support_set, event, constraint=self.config.constraint)
            grown_children[event] = grown
            append_supports[event] = grown.support
        self.stats.closure_checks += 1
        decision = self._checker.check(support_set, prefix_sets, append_supports=append_supports)
        self.stats.extension_evaluations += decision.extensions_evaluated
        # Keep the caches small: only the current DFS path is ever re-queried.
        if len(self._decision_cache) > 4096:
            self._decision_cache.clear()
            self._append_cache.clear()
        self._decision_cache[key] = decision
        self._append_cache[key] = grown_children
        return decision


def mine_closed(
    database: Union[SequenceDatabase, InvertedEventIndex],
    min_sup: int,
    *,
    enable_lbcheck: bool = True,
    **kwargs,
) -> MiningResult:
    """Mine all closed frequent patterns (functional façade).

    Equivalent to ``CloGSgrow(min_sup, enable_lbcheck=..., **kwargs).mine(database)``.
    """
    return CloGSgrow(min_sup, enable_lbcheck=enable_lbcheck, **kwargs).mine(database)
