"""CloGSgrow (Algorithm 4): mining closed frequent patterns.

CloGSgrow is GSgrow with two modifications at every frequent DFS node
(lines 6–7 of Algorithm 4):

* a pattern is reported only if closure checking (``CCheck``, Theorem 4)
  says it is closed, and
* the DFS subtree is pruned entirely when landmark border checking
  (``LBCheck``, Theorem 5) finds an equal-support extension whose leftmost
  support set does not shift the landmark border to the right.

Both checks are implemented in :mod:`repro.core.closure`; this module wires
them into the DFS inherited from :class:`~repro.core.gsgrow.GSgrow`.
"""

from __future__ import annotations


from repro.core.closure import ClosureChecker, ClosureDecision
from repro.core.engine import SupportSetLike
from repro.core.gsgrow import GSgrow
from repro.core.results import MiningResult
from repro.db.database import SequenceDatabase
from repro.db.index import InvertedEventIndex
from repro.db.sequence import Event


class CloGSgrow(GSgrow):
    """The CloGSgrow closed-pattern miner (Algorithm 4).

    Accepts every :class:`~repro.core.gsgrow.MinerConfig` option of GSgrow
    plus ``enable_lbcheck`` (default ``True``); disabling it keeps the output
    identical but removes the search-space pruning — the configuration used
    by the ablation benchmark to quantify Theorem 5's benefit.

    With ``max_length=None`` (the default) the output is exactly the paper's
    closed pattern set.  When a ``max_length`` cap is given, the output is
    the closed pattern set *truncated at the cap*: every reported pattern is
    closed in the full pattern universe (closure checking at cap-length nodes
    evaluates one-event extensions even though they are longer than the cap)
    and the DFS simply stops growing at the cap.  Because closedness never
    depends on the cap, Theorem-5 landmark border pruning stays sound under a
    cap and ``enable_lbcheck`` changes runtime only, never the output.  (The
    alternative semantics — "closed within the capped universe", which must
    report *every* frequent cap-length pattern — is exactly the frequent
    -pattern explosion the paper's closed mining exists to avoid, and is
    available anyway as ``GSgrow(max_length=...)`` plus a closed filter.)

    Example
    -------
    >>> from repro.db import SequenceDatabase
    >>> db = SequenceDatabase.from_strings(["ABCABCA", "AABBCCC"])
    >>> closed = CloGSgrow(min_sup=4).mine(db)
    >>> "ABC" in closed and "AB" not in closed
    True
    """

    algorithm_name = "CloGSgrow"

    #: Entry budget of the per-node decision / grown-children caches; once
    #: exceeded, entries off the live DFS path are evicted (the live path is
    #: always spared — see :meth:`_decide`).
    cache_limit = 4096

    def __init__(self, min_sup: int = 2, *, enable_lbcheck: bool = True, **kwargs):
        super().__init__(min_sup, **kwargs)
        self.enable_lbcheck = enable_lbcheck
        self._checker: ClosureChecker | None = None
        self._decision_cache: dict[tuple, ClosureDecision] = {}
        # Grown support sets computed while closure-checking a node, reused by
        # the DFS growth step so each P ∘ e is only instance-grown once.
        self._append_cache: dict[tuple, dict[Event, SupportSetLike]] = {}

    # ------------------------------------------------------------------
    # GSgrow hooks
    # ------------------------------------------------------------------
    def _prepare(self, index: InvertedEventIndex) -> None:
        """Build the closure checker and reset the per-run caches."""
        self._checker = ClosureChecker(
            index,
            enable_lbcheck=self.enable_lbcheck,
            constraint=self.config.constraint,
            engine=self._engine,
        )
        self._decision_cache = {}
        self._append_cache = {}

    def _grow_child(self, index, support_set: SupportSetLike, event: Event) -> SupportSetLike:
        cached = self._append_cache.get(support_set.pattern.events, {}).get(event)
        if cached is not None:
            return cached
        return super()._grow_child(index, support_set, event)

    def _accept(
        self,
        support_set: SupportSetLike,
        index: InvertedEventIndex,
        prefix_sets: list[SupportSetLike],
        events: list[Event],
    ) -> bool:
        decision = self._decide(support_set, index, prefix_sets, events)
        return decision.closed

    def _should_stop_growing(
        self,
        support_set: SupportSetLike,
        index: InvertedEventIndex,
        prefix_sets: list[SupportSetLike],
        events: list[Event],
    ) -> bool:
        decision = self._decide(support_set, index, prefix_sets, events)
        if decision.prunable:
            self.stats.nodes_pruned_lbcheck += 1
        return decision.prunable

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _decide(
        self,
        support_set: SupportSetLike,
        index: InvertedEventIndex,
        prefix_sets: list[SupportSetLike],
        events: list[Event],
    ) -> ClosureDecision:
        """Run (and cache) the closure decision for the current DFS node.

        ``_accept`` and ``_should_stop_growing`` are called back-to-back for
        the same node, so the decision is cached per pattern to avoid paying
        for the extension evaluation twice.
        """
        key = support_set.pattern.events
        cached = self._decision_cache.get(key)
        if cached is not None:
            return cached
        assert self._checker is not None, "mine() must be called before the DFS hooks"
        at_cap = (
            self.config.max_length is not None
            and len(support_set.pattern) >= self.config.max_length
        )
        if at_cap:
            # The DFS will not enter this subtree, so only closedness is
            # needed (closedness is always evaluated against the *full*
            # pattern universe — extensions longer than the cap included —
            # which is what keeps LBCheck's Theorem-5 pruning sound under a
            # cap).  Appends are left to the checker's lazy early-exit loop
            # and nothing is cached for a growth step that never happens.
            self.stats.closure_checks += 1
            decision = self._checker.check(support_set, prefix_sets, need_pruning=False)
            self.stats.extension_evaluations += decision.extensions_evaluated
            self._decision_cache[key] = decision
            return decision
        # Pre-compute the append-extension support sets once: CCheck needs
        # their sizes and the DFS growth step reuses the sets themselves.
        grown_children: dict[Event, SupportSetLike] = {}
        append_supports: dict[Event, int] = {}
        for event in events:
            self.stats.ins_grow_calls += 1
            grown = self._engine.grow(index, support_set, event, constraint=self.config.constraint)
            grown_children[event] = grown
            append_supports[event] = grown.support
        self.stats.closure_checks += 1
        decision = self._checker.check(support_set, prefix_sets, append_supports=append_supports)
        self.stats.extension_evaluations += decision.extensions_evaluated
        # Keep the caches small.  Only the current DFS path is ever
        # re-queried (`_grow_child` reads `_append_cache[prefix]` while the
        # prefix's event loop is still running), so eviction must spare the
        # live path: wiping it would force every pending child of every
        # ancestor to be instance-grown a second time.
        if len(self._append_cache) > self.cache_limit or len(self._decision_cache) > self.cache_limit:
            self.stats.cache_evictions += 1
            live = {prefix.pattern.events for prefix in prefix_sets}
            for stale in [k for k in self._append_cache if k not in live]:
                del self._append_cache[stale]
            for stale in [k for k in self._decision_cache if k not in live]:
                del self._decision_cache[stale]
        self._decision_cache[key] = decision
        self._append_cache[key] = grown_children
        return decision


def mine_closed(
    database: SequenceDatabase | InvertedEventIndex,
    min_sup: int,
    *,
    enable_lbcheck: bool = True,
    on_pattern=None,
    **kwargs,
) -> MiningResult:
    """Mine all closed frequent patterns (functional façade).

    Equivalent to ``CloGSgrow(min_sup, enable_lbcheck=..., **kwargs).mine(database)``;
    ``on_pattern`` streams each closed pattern out as the DFS reports it.

    Example
    -------
    >>> from repro.db import SequenceDatabase
    >>> db = SequenceDatabase.from_strings(["AABCDABB", "ABCD"])
    >>> sorted(str(mp.pattern) for mp in mine_closed(db, 2))
    ['AABB', 'AB', 'ABCD']
    """
    return CloGSgrow(min_sup, enable_lbcheck=enable_lbcheck, **kwargs).mine(
        database, on_pattern=on_pattern
    )
