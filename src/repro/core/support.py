"""Repetitive support and (leftmost) support sets.

Definition 2.5 defines the repetitive support ``sup(P)`` as the maximum size
of a non-redundant instance set of ``P`` and calls any witness of that
maximum a *support set*.  Definition 3.2 singles out the *leftmost* support
set — the one whose landmarks are position-wise smallest when instances are
compared in the right-shift order; the instance-growth machinery always
produces (and consumes) leftmost support sets.

:class:`SupportSet` is the container used throughout the miners.  The
functions :func:`sup_comp` (Algorithm 1) and :func:`repetitive_support` are
the public entry points for computing the support of a single pattern.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence as PySequence, Union

from repro.core.instance import Instance, is_non_redundant, sort_right_shift
from repro.core.pattern import Pattern, as_pattern
from repro.db.database import SequenceDatabase
from repro.db.index import InvertedEventIndex


class SupportSet:
    """A set of instances of one pattern, kept in right-shift order.

    The miners maintain the invariant that a :class:`SupportSet` produced by
    :func:`repro.core.instance_growth.ins_grow` is the *leftmost* support set
    of its pattern; user-constructed instances are merely sorted.
    """

    __slots__ = ("pattern", "_instances")

    def __init__(self, pattern: Union[Pattern, str, PySequence], instances: Iterable[Instance] = ()):
        self.pattern = as_pattern(pattern)
        self._instances: List[Instance] = sort_right_shift(instances)

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._instances)

    def __iter__(self) -> Iterator[Instance]:
        return iter(self._instances)

    def __getitem__(self, index):
        return self._instances[index]

    def __eq__(self, other) -> bool:
        if isinstance(other, SupportSet):
            return self.pattern == other.pattern and self._instances == other._instances
        return NotImplemented

    def __repr__(self) -> str:
        return f"SupportSet({self.pattern!s}, {self._instances!r})"

    # ------------------------------------------------------------------
    # Accessors used by the miners
    # ------------------------------------------------------------------
    @property
    def instances(self) -> List[Instance]:
        """The instances in right-shift order."""
        return list(self._instances)

    @property
    def support(self) -> int:
        """The size of the set — equal to ``sup(P)`` for genuine support sets."""
        return len(self._instances)

    def instances_in_sequence(self, i: int) -> List[Instance]:
        """Instances living in sequence ``S_i`` (the paper's ``I_i``)."""
        return [ins for ins in self._instances if ins.seq_index == i]

    def sequence_indices(self) -> List[int]:
        """Sorted distinct sequence indices containing at least one instance."""
        return sorted({ins.seq_index for ins in self._instances})

    def last_positions(self) -> List[tuple]:
        """``(i, last)`` pairs in right-shift order (the landmark border)."""
        return [(ins.seq_index, ins.last) for ins in self._instances]

    def first_positions(self) -> List[tuple]:
        """``(i, first)`` pairs in right-shift order."""
        return [(ins.seq_index, ins.first) for ins in self._instances]

    def compressed(self) -> List[tuple]:
        """The ``(i, l1, lm)`` triples of Section III-D, in right-shift order."""
        return [ins.compressed() for ins in self._instances]

    def per_sequence_counts(self) -> dict:
        """Number of instances per sequence index (used as feature values)."""
        counts: dict = {}
        for ins in self._instances:
            counts[ins.seq_index] = counts.get(ins.seq_index, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Validation helpers (used heavily by tests)
    # ------------------------------------------------------------------
    def is_non_redundant(self) -> bool:
        """True if no two instances overlap (Definition 2.4)."""
        return is_non_redundant(self._instances)

    def is_valid_for(self, database: SequenceDatabase) -> bool:
        """True if every instance really matches the pattern in ``database``."""
        return all(ins.matches(self.pattern, database) for ins in self._instances)


def initial_support_set(index: InvertedEventIndex, event) -> SupportSet:
    """Leftmost support set of the size-1 pattern ``event``.

    For a single event every occurrence is an instance and no two instances
    overlap, so the support set is simply the list of all positions
    (line 1 of Algorithm 1 / line 3 of Algorithm 3).
    """
    instances = [Instance(i, (pos,)) for i, pos in index.size_one_instances(event)]
    return SupportSet(Pattern((event,)), instances)


def sup_comp(
    database_or_index: Union[SequenceDatabase, InvertedEventIndex],
    pattern: Union[Pattern, str, PySequence],
    constraint: Optional["GapConstraint"] = None,
) -> SupportSet:
    """Algorithm 1 (``supComp``): compute the leftmost support set of ``pattern``.

    Parameters
    ----------
    database_or_index:
        Either a :class:`SequenceDatabase` (an index is built on the fly) or
        a pre-built :class:`InvertedEventIndex`.
    pattern:
        The pattern whose support set is wanted; must be non-empty.
    constraint:
        Optional :class:`~repro.core.constraints.GapConstraint` restricting
        the gaps between consecutive landmark positions (Section V future
        work; see the caveat in :mod:`repro.core.constraints`).

    Returns
    -------
    SupportSet
        The leftmost support set; its :attr:`~SupportSet.support` equals
        ``sup(P)``.
    """
    from repro.core.instance_growth import ins_grow  # local import to avoid a cycle

    pattern = as_pattern(pattern)
    if pattern.is_empty():
        raise ValueError("the empty pattern has no well-defined support set")
    index = _as_index(database_or_index)
    support_set = initial_support_set(index, pattern.at(1))
    for j in range(2, len(pattern) + 1):
        support_set = ins_grow(index, support_set, pattern.at(j), constraint=constraint)
    return support_set


def repetitive_support(
    database_or_index: Union[SequenceDatabase, InvertedEventIndex],
    pattern: Union[Pattern, str, PySequence],
    constraint: Optional["GapConstraint"] = None,
) -> int:
    """Repetitive support ``sup(P)`` (Definition 2.5) of ``pattern``."""
    return sup_comp(database_or_index, pattern, constraint=constraint).support


def _as_index(database_or_index) -> InvertedEventIndex:
    if isinstance(database_or_index, InvertedEventIndex):
        return database_or_index
    if isinstance(database_or_index, SequenceDatabase):
        return InvertedEventIndex(database_or_index)
    raise TypeError(
        "expected a SequenceDatabase or InvertedEventIndex, got "
        f"{type(database_or_index).__name__}"
    )
