"""Repetitive support and (leftmost) support sets.

Definition 2.5 defines the repetitive support ``sup(P)`` as the maximum size
of a non-redundant instance set of ``P`` and calls any witness of that
maximum a *support set*.  Definition 3.2 singles out the *leftmost* support
set — the one whose landmarks are position-wise smallest when instances are
compared in the right-shift order; the instance-growth machinery always
produces (and consumes) leftmost support sets.

:class:`SupportSet` is the container used throughout the miners.  On the DFS
hot path it is backed by two flat integer arrays — the sequence indices and
the row-major landmark matrix — so instance growth is a pointer sweep rather
than a walk over per-instance objects; :class:`~repro.core.instance.Instance`
objects are materialised lazily (and cached) only when a caller asks for
them.  The functions :func:`sup_comp` (Algorithm 1) and
:func:`repetitive_support` are the public entry points for computing the
support of a single pattern.
"""

from __future__ import annotations

from array import array
from collections.abc import Iterable, Iterator, Sequence as PySequence

from repro.core.instance import Instance, is_non_redundant, sort_right_shift
from repro.core.pattern import Pattern, as_pattern
from repro.db.database import SequenceDatabase
from repro.db.index import POSITION_TYPECODE, InvertedEventIndex

_EMPTY_ARRAY = array(POSITION_TYPECODE)


class SupportSet:
    """A set of instances of one pattern, kept in right-shift order.

    The miners maintain the invariant that a :class:`SupportSet` produced by
    :func:`repro.core.instance_growth.ins_grow` is the *leftmost* support set
    of its pattern; user-constructed instances are merely sorted.

    Storage is columnar: ``seq_indices_array`` holds the sequence index of
    each instance and ``landmarks_array`` the landmarks, row-major with
    ``row_width`` positions per instance.  Both arrays are in right-shift
    order and must not be mutated by callers.
    """

    __slots__ = ("pattern", "_seqs", "_landmarks", "_m", "_materialized")

    def __init__(self, pattern: Pattern | str | PySequence, instances: Iterable[Instance] = ()):
        self.pattern = as_pattern(pattern)
        ordered = sort_right_shift(instances)
        widths = {len(ins.landmark) for ins in ordered}
        if len(widths) > 1:
            raise ValueError(
                f"instances of one pattern must have equal landmark lengths, got {sorted(widths)}"
            )
        self._m = widths.pop() if widths else len(self.pattern)
        seqs = array(POSITION_TYPECODE)
        landmarks = array(POSITION_TYPECODE)
        for ins in ordered:
            seqs.append(ins.seq_index)
            landmarks.extend(ins.landmark)
        self._seqs = seqs
        self._landmarks = landmarks
        self._materialized: list[Instance] | None = ordered

    @classmethod
    def from_arrays(
        cls,
        pattern: Pattern | str | PySequence,
        seqs: array,
        landmarks: array,
        row_width: int,
    ) -> SupportSet:
        """Trusted constructor used by the engine.

        ``seqs``/``landmarks`` must already be in right-shift order with
        ``row_width`` positions per instance; no sorting or validation is
        performed.
        """
        self = cls.__new__(cls)
        self.pattern = as_pattern(pattern)
        self._seqs = seqs
        self._landmarks = landmarks
        self._m = row_width
        self._materialized = None
        return self

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._seqs)

    def __iter__(self) -> Iterator[Instance]:
        return iter(self._materialize())

    def __getitem__(self, index):
        return self._materialize()[index]

    def __eq__(self, other) -> bool:
        if isinstance(other, SupportSet):
            return (
                self.pattern == other.pattern
                and self._seqs == other._seqs
                and self._landmarks == other._landmarks
            )
        return NotImplemented

    def __repr__(self) -> str:
        return f"SupportSet({self.pattern!s}, {self._materialize()!r})"

    # ------------------------------------------------------------------
    # Array accessors used by the engine (read-only!)
    # ------------------------------------------------------------------
    @property
    def seq_indices_array(self) -> array:
        """Flat array of sequence indices, one per instance."""
        return self._seqs

    @property
    def landmarks_array(self) -> array:
        """Row-major landmark matrix (``row_width`` positions per instance)."""
        return self._landmarks

    @property
    def row_width(self) -> int:
        """Number of landmark positions per instance."""
        return self._m

    def border_arrays(self) -> tuple[array, array]:
        """The landmark border as ``(sequence indices, last positions)`` arrays."""
        m = self._m
        if m == 1:
            return self._seqs, self._landmarks
        lasts = self._landmarks[m - 1 :: m] if self._seqs else _EMPTY_ARRAY
        return self._seqs, lasts

    # ------------------------------------------------------------------
    # Accessors used by the miners
    # ------------------------------------------------------------------
    @property
    def instances(self) -> list[Instance]:
        """The instances in right-shift order."""
        return list(self._materialize())

    @property
    def support(self) -> int:
        """The size of the set — equal to ``sup(P)`` for genuine support sets."""
        return len(self._seqs)

    def instances_in_sequence(self, i: int) -> list[Instance]:
        """Instances living in sequence ``S_i`` (the paper's ``I_i``)."""
        return [ins for ins in self._materialize() if ins.seq_index == i]

    def sequence_indices(self) -> list[int]:
        """Sorted distinct sequence indices containing at least one instance."""
        return sorted(set(self._seqs))

    def last_positions(self) -> list[tuple]:
        """``(i, last)`` pairs in right-shift order (the landmark border)."""
        seqs, lasts = self.border_arrays()
        return list(zip(seqs, lasts, strict=False))

    def first_positions(self) -> list[tuple]:
        """``(i, first)`` pairs in right-shift order."""
        m = self._m
        return list(zip(self._seqs, self._landmarks[::m] if m > 1 else self._landmarks, strict=False))

    def compressed(self) -> list[tuple]:
        """The ``(i, l1, lm)`` triples of Section III-D, in right-shift order."""
        m = self._m
        lands = self._landmarks
        return [
            (seq, lands[k * m], lands[k * m + m - 1]) for k, seq in enumerate(self._seqs)
        ]

    def per_sequence_counts(self) -> dict:
        """Number of instances per sequence index (used as feature values)."""
        counts: dict = {}
        for seq in self._seqs:
            counts[seq] = counts.get(seq, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Validation helpers (used heavily by tests)
    # ------------------------------------------------------------------
    def is_non_redundant(self) -> bool:
        """True if no two instances overlap (Definition 2.4)."""
        return is_non_redundant(self._materialize())

    def is_valid_for(self, database: SequenceDatabase) -> bool:
        """True if every instance really matches the pattern in ``database``."""
        return all(ins.matches(self.pattern, database) for ins in self._materialize())

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _materialize(self) -> list[Instance]:
        cached = self._materialized
        if cached is None:
            m = self._m
            lands = self._landmarks
            cached = [
                Instance(seq, tuple(lands[k * m : (k + 1) * m]))
                for k, seq in enumerate(self._seqs)
            ]
            self._materialized = cached
        return cached


def initial_support_set(index: InvertedEventIndex, event) -> SupportSet:
    """Leftmost support set of the size-1 pattern ``event``.

    For a single event every occurrence is an instance and no two instances
    overlap, so the support set is simply the list of all positions
    (line 1 of Algorithm 1 / line 3 of Algorithm 3).
    """
    seqs, positions = index.size_one_arrays(event)
    return SupportSet.from_arrays(Pattern((event,)), seqs, positions, 1)


def sup_comp(
    database_or_index: SequenceDatabase | InvertedEventIndex,
    pattern: Pattern | str | PySequence,
    constraint: GapConstraint | None = None,
) -> SupportSet:
    """Algorithm 1 (``supComp``): compute the leftmost support set of ``pattern``.

    Parameters
    ----------
    database_or_index:
        Either a :class:`SequenceDatabase` (an index is built on the fly) or
        a pre-built :class:`InvertedEventIndex`.
    pattern:
        The pattern whose support set is wanted; must be non-empty.
    constraint:
        Optional :class:`~repro.core.constraints.GapConstraint` restricting
        the gaps between consecutive landmark positions (Section V future
        work; see the caveat in :mod:`repro.core.constraints`).

    Returns
    -------
    SupportSet
        The leftmost support set; its :attr:`~SupportSet.support` equals
        ``sup(P)``.

    Example
    -------
    >>> from repro.db import SequenceDatabase
    >>> db = SequenceDatabase.from_strings(["AABCDABB", "ABCD"])
    >>> sup_comp(db, "AB")
    SupportSet(AB, [(1, <1, 3>), (1, <2, 7>), (1, <6, 8>), (2, <1, 2>)])
    """
    from repro.core.instance_growth import ins_grow  # local import to avoid a cycle

    pattern = as_pattern(pattern)
    if pattern.is_empty():
        raise ValueError("the empty pattern has no well-defined support set")
    index = _as_index(database_or_index)
    support_set = initial_support_set(index, pattern.at(1))
    for j in range(2, len(pattern) + 1):
        support_set = ins_grow(index, support_set, pattern.at(j), constraint=constraint)
    return support_set


def repetitive_support(
    database_or_index: SequenceDatabase | InvertedEventIndex,
    pattern: Pattern | str | PySequence,
    constraint: GapConstraint | None = None,
) -> int:
    """Repetitive support ``sup(P)`` (Definition 2.5) of ``pattern``.

    Only the support is wanted, so this runs on the compressed ``(i, l1, lm)``
    engine of Section III-D (:mod:`repro.core.compressed`) — constant space
    per instance instead of full landmark rows; use :func:`sup_comp` when the
    instances themselves are needed.

    Example
    -------
    >>> from repro.db import SequenceDatabase
    >>> db = SequenceDatabase.from_strings(["AABCDABB", "ABCD"])
    >>> repetitive_support(db, "AB")
    4
    """
    from repro.core.compressed import sup_comp_compressed  # local import to avoid a cycle

    return sup_comp_compressed(
        _as_index(database_or_index), pattern, constraint=constraint
    ).support


def _as_index(database_or_index) -> InvertedEventIndex:
    if isinstance(database_or_index, InvertedEventIndex):
        return database_or_index
    if isinstance(database_or_index, SequenceDatabase):
        return InvertedEventIndex(database_or_index)
    raise TypeError(
        "expected a SequenceDatabase or InvertedEventIndex, got "
        f"{type(database_or_index).__name__}"
    )
