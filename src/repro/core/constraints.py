"""Gap constraints (the Section V "future work" variant).

The paper mines patterns with *arbitrary* gaps and mentions gap-constrained
(and approximate) mining as future work.  :class:`GapConstraint` implements
the natural constrained variant: the number of events strictly between two
consecutive landmark positions must lie within ``[min_gap, max_gap]``.

Caveat on semantics
-------------------
The optimality proof of instance growth (Lemma 4) relies on unbounded gaps:
with a *maximum* gap constraint the greedy leftmost extension is no longer
guaranteed to realise the maximum number of non-overlapping instances, so the
constrained miners report a lower bound on the constrained repetitive
support (they remain exact whenever ``max_gap`` is unbounded, and the
reported instance sets are always valid non-overlapping instance sets that
satisfy the constraint).  This is documented behaviour, not a bug; the exact
constrained problem is outside the paper's scope.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GapConstraint:
    """Bounds on the gap between consecutive landmark positions.

    The *gap* between consecutive positions ``l_{j-1}`` and ``l_j`` is the
    number of events strictly between them, i.e. ``l_j - l_{j-1} - 1``.

    Parameters
    ----------
    min_gap:
        Minimum allowed gap (``0`` means adjacent events are allowed).
    max_gap:
        Maximum allowed gap, or ``None`` for unbounded (the paper's setting).
    """

    min_gap: int = 0
    max_gap: int | None = None

    def __post_init__(self):
        if self.min_gap < 0:
            raise ValueError(f"min_gap must be >= 0, got {self.min_gap}")
        if self.max_gap is not None and self.max_gap < self.min_gap:
            raise ValueError(
                f"max_gap ({self.max_gap}) must be >= min_gap ({self.min_gap})"
            )

    @property
    def unbounded(self) -> bool:
        """True when no maximum gap is imposed (exact-semantics regime)."""
        return self.max_gap is None

    def lowest_allowed(self, previous_position: int) -> int:
        """Smallest exclusive lower bound on the next position.

        The next landmark position must be ``> previous_position + min_gap``;
        this returns that exclusive bound for use with ``next()`` queries.
        """
        return previous_position + self.min_gap

    def highest_allowed(self, previous_position: int) -> int | None:
        """Largest position allowed after ``previous_position`` (or None)."""
        if self.max_gap is None:
            return None
        return previous_position + self.max_gap + 1

    def allows(self, previous_position: int, next_position: int) -> bool:
        """True if moving from ``previous_position`` to ``next_position`` is legal."""
        gap = next_position - previous_position - 1
        if gap < self.min_gap:
            return False
        if self.max_gap is not None and gap > self.max_gap:
            return False
        return True

    def allows_landmark(self, landmark) -> bool:
        """True if every consecutive pair of positions in ``landmark`` is legal."""
        return all(self.allows(a, b) for a, b in zip(landmark, landmark[1:], strict=False))

    def describe(self) -> str:
        """Human readable description used in experiment reports."""
        upper = "∞" if self.max_gap is None else str(self.max_gap)
        return f"gap in [{self.min_gap}, {upper}]"


#: The paper's default setting: any gap is allowed.
UNCONSTRAINED = GapConstraint(0, None)
