"""Closure checking (Theorem 4) and landmark border checking (Theorem 5).

``CloGSgrow`` needs two decisions at every frequent DFS node ``P``:

* **CCheck** — is ``P`` closed?  By Theorem 4 it suffices to look at the
  single-event extensions of ``P`` (append, insert, prepend): ``P`` is
  non-closed iff one of them has the same repetitive support.
* **LBCheck** — can the whole DFS subtree rooted at ``P`` be pruned?  By
  Theorem 5 this is the case when some extension ``P'`` not only has equal
  support but its leftmost support set also keeps the *landmark border* (the
  last landmark position of each instance, compared in right-shift order) at
  or to the left of ``P``'s border.  Appending can never satisfy the border
  condition (the appended event always moves the border right), so only
  insertions and prepends are border candidates.

Evaluating an insertion extension ``e1..ej e' e(j+1)..em`` needs a leftmost
support set for it.  The DFS already carries the leftmost support sets of all
prefixes of ``P`` (they are the ancestors on the DFS path), so the checker
reuses the prefix ``e1..ej``, grows it with ``e'`` and then with the
remaining suffix — exactly the ``supComp`` recurrence, restarted mid-way.

Candidate events are restricted to those whose total occurrence count is at
least ``sup(P)``: any extension containing a rarer event has strictly smaller
support (Apriori), so the restriction never misses an equal-support
extension.  This keeps the check exact.

The checker is engine-agnostic: every probe it runs (append growth, the
insert/prepend ``supComp`` restarts, the Theorem-5 border comparison) reads
only supports and ``border_arrays()``, so it operates on whichever
representation the miner's :class:`~repro.core.engine.SupportEngine`
produces — full landmarks under ``store_instances=True``, compressed
``(i, l1, lm)`` triples otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.constraints import GapConstraint
from repro.core.engine import (
    COMPRESSED_ENGINE,
    FULL_LANDMARK_ENGINE,
    SupportEngine,
    SupportSetLike,
)
from repro.core.pattern import Pattern
from repro.core.support import SupportSet
from repro.db.index import InvertedEventIndex
from repro.db.sequence import Event


@dataclass
class ClosureDecision:
    """Outcome of checking one pattern.

    Attributes
    ----------
    closed:
        ``True`` iff no single-event extension has equal support (Theorem 4).
    prunable:
        ``True`` iff some extension satisfies both conditions of Theorem 5,
        so the DFS subtree below the pattern can be skipped entirely.
    witness:
        An equal-support extension proving non-closedness (if any).
    pruning_witness:
        An extension satisfying the landmark-border condition (if any).
    extensions_evaluated:
        Number of extension patterns whose support was computed — reported by
        the ablation benchmark.
    """

    closed: bool
    prunable: bool
    witness: Pattern | None = None
    pruning_witness: Pattern | None = None
    extensions_evaluated: int = 0


class ClosureChecker:
    """Evaluates CCheck and LBCheck for the closed-pattern miner.

    Parameters
    ----------
    index:
        Inverted event index of the database being mined.
    enable_lbcheck:
        When ``False`` the checker still decides closedness but never reports
        a pattern as prunable — this is the ablation configuration measured
        in the benchmarks (output identical, runtime much larger).
    constraint:
        Optional gap constraint, forwarded to instance growth.
    engine:
        The :class:`~repro.core.engine.SupportEngine` whose support sets the
        caller passes in; extension probes are grown with the same engine.
        When omitted, :meth:`check` detects the engine from the type of the
        support set it is handed, so mixed callers can never grow a
        compressed set through the full-landmark sweep (or vice versa).
    """

    def __init__(
        self,
        index: InvertedEventIndex,
        *,
        enable_lbcheck: bool = True,
        constraint: GapConstraint | None = None,
        engine: SupportEngine | None = None,
    ):
        self.index = index
        self.enable_lbcheck = enable_lbcheck
        self.constraint = constraint
        self.engine = engine
        self._event_totals: dict[Event, int] = {
            event: index.total_count(event) for event in index.alphabet()
        }
        # Lazily memoised supports of 2-event patterns, used as an Apriori
        # filter: any extension containing the 2-gram (a, b) has support at
        # most sup(ab), so candidates whose neighbouring 2-grams are already
        # below the target support can be skipped without growing them.
        self._pair_support: dict[tuple[Event, Event], int] = {}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def check(
        self,
        support_set: SupportSetLike,
        prefix_sets: list[SupportSetLike],
        append_supports: dict[Event, int] | None = None,
        *,
        need_pruning: bool = True,
    ) -> ClosureDecision:
        """Run closure checking and landmark border checking for one pattern.

        Parameters
        ----------
        support_set:
            Leftmost support set of the pattern ``P`` being checked.
        prefix_sets:
            Leftmost support sets of the prefixes ``e1``, ``e1 e2``, …, ``P``
            (the DFS ancestors including ``P`` itself), used to evaluate
            insertion extensions without recomputing from scratch.
        append_supports:
            Supports of the append extensions ``P ∘ e`` if the caller already
            computed them (CloGSgrow computes them anyway while growing the
            DFS); missing entries are computed on demand.
        need_pruning:
            ``False`` lets the caller skip the landmark border scan even when
            LBCheck is enabled — used at nodes whose subtree the DFS will not
            enter anyway (a ``max_length`` cap), where only closedness
            matters and the scan can stop at the first witness.
        """
        pattern = support_set.pattern
        support = support_set.support
        engine = self._engine_for(support_set)
        candidates = self._candidate_events(support)
        decision = ClosureDecision(closed=True, prunable=False)
        lbcheck = self.enable_lbcheck and need_pruning

        # --- Append extensions (case 1 of Definition 3.4) ------------------
        # They can reveal non-closedness but never allow border pruning.
        append_supports = dict(append_supports or {})
        for event in candidates:
            if event in append_supports:
                appended_support = append_supports[event]
            else:
                decision.extensions_evaluated += 1
                appended_support = engine.grow(
                    self.index, support_set, event, constraint=self.constraint
                ).support
            if appended_support == support:
                decision.closed = False
                if decision.witness is None:
                    decision.witness = pattern.grow(event)
                break  # closedness settled; border pruning needs insertions anyway

        # --- Insertion / prepend extensions (cases 2 and 3) ----------------
        need_prune_scan = lbcheck
        need_closed_scan = decision.closed
        if not (need_prune_scan or need_closed_scan):
            return decision

        border = support_set.border_arrays()
        for gap in range(len(pattern)):  # gap g inserts between e_g and e_{g+1} (0 = prepend)
            suffix = pattern.suffix_from(gap)
            prefix_set = prefix_sets[gap - 1] if gap >= 1 else None
            before = pattern.at(gap) if gap >= 1 else None
            after = pattern.at(gap + 1)
            for event in candidates:
                # Apriori 2-gram filter: the extension contains the 2-grams
                # (e_gap, e') and (e', e_{gap+1}); if either has support below
                # the target, the extension cannot reach it.  (Skipped under a
                # gap constraint, where support is not monotone in sub-patterns.)
                if self.constraint is None:
                    if self._pair_support_of(engine, event, after) < support:
                        continue
                    if before is not None and self._pair_support_of(engine, before, event) < support:
                        continue
                decision.extensions_evaluated += 1
                extension_set = self._insertion_support_set(
                    engine, prefix_set, event, suffix, stop_below=support
                )
                if extension_set is None or extension_set.support != support:
                    continue
                decision.closed = False
                if decision.witness is None:
                    decision.witness = pattern.insert(gap, event)
                if lbcheck and self._border_dominates(extension_set, border):
                    decision.prunable = True
                    decision.pruning_witness = pattern.insert(gap, event)
                    return decision
                if not lbcheck:
                    # Closedness is settled and pruning is not wanted: stop early.
                    return decision
        return decision

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _candidate_events(self, support: int) -> list[Event]:
        """Events that could possibly appear in an equal-support extension."""
        return sorted(
            (e for e, total in self._event_totals.items() if total >= support),
            key=repr,
        )

    def _engine_for(self, support_set: SupportSetLike) -> SupportEngine:
        """The engine to grow extension probes with.

        An explicitly configured engine wins; otherwise the engine is read
        off the representation of the set being checked, so the probes always
        match the sets the caller is carrying.
        """
        if self.engine is not None:
            return self.engine
        if isinstance(support_set, SupportSet):
            return FULL_LANDMARK_ENGINE
        return COMPRESSED_ENGINE

    def _pair_support_of(self, engine: SupportEngine, first: Event, second: Event) -> int:
        """Memoised repetitive support of the 2-event pattern ``first second``.

        Supports are representation-independent, so the cache is shared even
        if callers alternate engines.
        """
        key = (first, second)
        cached = self._pair_support.get(key)
        if cached is None:
            grown = engine.grow(
                self.index, engine.initial(self.index, first), second, constraint=self.constraint
            )
            cached = grown.support
            self._pair_support[key] = cached
        return cached

    def _insertion_support_set(
        self,
        engine: SupportEngine,
        prefix_set: SupportSetLike | None,
        event: Event,
        suffix: Pattern,
        *,
        stop_below: int = 0,
    ) -> SupportSetLike | None:
        """Leftmost support set of ``prefix ∘ event ∘ suffix``.

        ``prefix_set`` is the leftmost support set of the prefix (``None``
        for a prepend, where the new event starts the pattern).  Growth is
        abandoned (returning ``None``) as soon as the intermediate support
        drops below ``stop_below`` — supports only shrink under growth
        (Lemma 1), so such an extension can never reach the target support.
        """
        if prefix_set is None:
            grown = engine.initial(self.index, event)
        else:
            grown = engine.grow(self.index, prefix_set, event, constraint=self.constraint)
        if grown.support < stop_below:
            return None
        for suffix_event in suffix:
            grown = engine.grow(self.index, grown, suffix_event, constraint=self.constraint)
            if grown.support < stop_below:
                return None
        return grown

    @staticmethod
    def _border_dominates(extension_set: SupportSetLike, border: tuple) -> bool:
        """Condition (ii) of Theorem 5.

        Both support sets are in right-shift order and (given equal support)
        pair up instance by instance; the extension dominates when every one
        of its instances ends at or before the corresponding instance of the
        original pattern, within the same sequence.  ``border`` is the
        ``(sequence indices, last positions)`` array pair of the original
        pattern (see :meth:`SupportSet.border_arrays`).
        """
        seqs_orig, lasts_orig = border
        seqs_ext, lasts_ext = extension_set.border_arrays()
        if len(seqs_ext) != len(seqs_orig) or seqs_ext != seqs_orig:
            return False
        return all(le <= lo for le, lo in zip(lasts_ext, lasts_orig, strict=False))
