"""Brute-force reference implementations used as test oracles.

These functions implement the *definitions* of Section II directly — every
landmark is enumerated and the maximum non-redundant instance set is found by
exhaustive search — with no attention to efficiency.  They exist so that the
efficient algorithms (``supComp``, ``GSgrow``, ``CloGSgrow``) can be checked
against the semantics on small inputs, both in golden tests for the paper's
worked examples and in property-based tests on random databases.
"""

from __future__ import annotations

from itertools import combinations
from collections.abc import Sequence as PySequence

from repro.core.constraints import GapConstraint
from repro.core.instance import Instance, instances_overlap
from repro.core.pattern import Pattern, as_pattern
from repro.db.database import SequenceDatabase
from repro.db.sequence import Sequence


def enumerate_landmarks(
    sequence: Sequence,
    pattern: Pattern | str | PySequence,
    constraint: GapConstraint | None = None,
) -> list[tuple[int, ...]]:
    """All landmarks of ``pattern`` in ``sequence`` (Definition 2.1).

    The number of landmarks can be exponential in the pattern length; only
    use this on small inputs (it is a test oracle, not a mining primitive).
    """
    pattern = as_pattern(pattern)
    if pattern.is_empty():
        return []
    landmarks: list[tuple[int, ...]] = []

    def extend(prefix: tuple[int, ...], j: int) -> None:
        if j > len(pattern):
            landmarks.append(prefix)
            return
        start = prefix[-1] + 1 if prefix else 1
        for pos in range(start, len(sequence) + 1):
            if sequence.at(pos) != pattern.at(j):
                continue
            if prefix and constraint is not None and not constraint.allows(prefix[-1], pos):
                continue
            extend(prefix + (pos,), j + 1)

    extend((), 1)
    return landmarks


def enumerate_instances(
    database: SequenceDatabase,
    pattern: Pattern | str | PySequence,
    constraint: GapConstraint | None = None,
) -> list[Instance]:
    """All instances of ``pattern`` in ``database`` (the set ``SeqDB(P)``)."""
    pattern = as_pattern(pattern)
    instances: list[Instance] = []
    for i, seq in database.enumerate():
        for landmark in enumerate_landmarks(seq, pattern, constraint=constraint):
            instances.append(Instance(i, landmark))
    return instances


def max_non_overlapping_in_sequence(instances: list[Instance]) -> int:
    """Maximum number of pairwise non-overlapping instances (one sequence).

    Exhaustive branch-and-bound over the conflict graph.  Exponential in the
    worst case; intended for small oracle checks only.
    """
    n = len(instances)
    if n == 0:
        return 0
    conflicts: list[set[int]] = [set() for _ in range(n)]
    for a, b in combinations(range(n), 2):
        if instances_overlap(instances[a], instances[b]):
            conflicts[a].add(b)
            conflicts[b].add(a)

    best = 0

    def search(idx: int, chosen: list[int]) -> None:
        nonlocal best
        if len(chosen) + (n - idx) <= best:
            return  # cannot beat the incumbent
        if idx == n:
            best = max(best, len(chosen))
            return
        # Option 1: take instance idx if it conflicts with nothing chosen.
        if all(idx not in conflicts[c] for c in chosen):
            chosen.append(idx)
            search(idx + 1, chosen)
            chosen.pop()
        # Option 2: skip it.
        search(idx + 1, chosen)

    search(0, [])
    return best


def repetitive_support_bruteforce(
    database: SequenceDatabase,
    pattern: Pattern | str | PySequence,
    constraint: GapConstraint | None = None,
) -> int:
    """Repetitive support computed straight from Definition 2.5.

    Instances in different sequences never overlap, so the maximum splits
    into a per-sequence maximum summed over sequences.
    """
    pattern = as_pattern(pattern)
    total = 0
    for i, seq in database.enumerate():
        instances = [
            Instance(i, lm) for lm in enumerate_landmarks(seq, pattern, constraint=constraint)
        ]
        total += max_non_overlapping_in_sequence(instances)
    return total


def frequent_patterns_bruteforce(
    database: SequenceDatabase,
    min_sup: int,
    max_length: int | None = None,
) -> dict[Pattern, int]:
    """All frequent patterns by breadth-first enumeration (test oracle).

    Uses the Apriori property for pruning but computes every support with
    :func:`repetitive_support_bruteforce`, so it is only usable on small
    databases.
    """
    if min_sup < 1:
        raise ValueError("min_sup must be >= 1")
    counts = database.event_counts()
    frequent: dict[Pattern, int] = {}
    frontier: list[Pattern] = []
    for event, count in sorted(counts.items(), key=lambda kv: repr(kv[0])):
        if count >= min_sup:
            pattern = Pattern((event,))
            frequent[pattern] = count
            frontier.append(pattern)
    events = [e for e, c in sorted(counts.items(), key=lambda kv: repr(kv[0])) if c >= min_sup]
    while frontier:
        next_frontier: list[Pattern] = []
        for pattern in frontier:
            if max_length is not None and len(pattern) >= max_length:
                continue
            for event in events:
                candidate = pattern.grow(event)
                support = repetitive_support_bruteforce(database, candidate)
                if support >= min_sup:
                    frequent[candidate] = support
                    next_frontier.append(candidate)
        frontier = next_frontier
    return frequent


def closed_patterns_bruteforce(
    database: SequenceDatabase,
    min_sup: int,
    max_length: int | None = None,
) -> dict[Pattern, int]:
    """All closed frequent patterns, derived from the brute-force frequent set.

    A frequent pattern is closed iff no frequent super-pattern has the same
    support (any equal-support super-pattern is itself frequent, so checking
    within the frequent set is sufficient).
    """
    frequent = frequent_patterns_bruteforce(database, min_sup, max_length=max_length)
    closed: dict[Pattern, int] = {}
    for pattern, support in frequent.items():
        is_closed = True
        for other, other_support in frequent.items():
            if other_support == support and pattern.is_proper_subpattern_of(other):
                is_closed = False
                break
        if is_closed:
            closed[pattern] = support
    return closed
