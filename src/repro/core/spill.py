"""Spill-to-disk for DFS support-set frontiers.

The miners hold one support set per live DFS node.  Each set is columnar
(``array('q')`` columns, see :mod:`repro.core.support` and
:mod:`repro.core.compressed`), so for a dense pattern the frontier can
dominate the process footprint even when the *database* lives on disk.

:class:`SpillPolicy` closes that gap at the engine seam: every set an
engine produces passes through :meth:`SpillPolicy.maybe_spill`, and any
set whose columns exceed the configured byte budget is rewritten onto
disk — the columns are dumped to an anonymous temp file, mmap'd read-only,
and the file is unlinked immediately (the mapping keeps the pages
reachable; the OS reclaims the space as soon as the set is garbage),
then the set is rebuilt through its trusted ``from_arrays`` constructor
with ``memoryview`` columns over the mapping.  Everything downstream
(growth sweeps, closure border checks, ``numpy.frombuffer``) already
accepts either column kind — the disk-backed index established that
contract — so a spilled set is observationally identical to a resident
one, just paged by the OS instead of held on the heap.

Because the wrap happens on :class:`~repro.core.engine.SupportEngine`
(:meth:`~repro.core.engine.SupportEngine.with_spill`), both the
full-landmark and compressed engines get spilling without knowing about
it, and the miners only see a ``spill_budget`` knob on
:class:`~repro.core.gsgrow.MinerConfig`.

On platforms without :mod:`mmap` (or big-endian hosts, where raw column
bytes cannot be reinterpreted) the policy degrades to a counted no-op:
mining proceeds fully in RAM.
"""

from __future__ import annotations

import os
import tempfile
from array import array
from typing import TYPE_CHECKING, Any

from repro.core.compressed import CompressedSupportSet
from repro.core.support import SupportSet
from repro.db.backend import POSITION_TYPECODE, can_map_zero_copy

if TYPE_CHECKING:
    from repro.core.engine import SupportSetLike
    from repro.obs import MetricsRegistry

_mmap: Any
try:  # pragma: no cover - exercised via the disabled-policy tests
    import mmap as _mmap_module

    _mmap = _mmap_module
except ImportError:  # pragma: no cover - platforms without mmap
    _mmap = None

_ITEMSIZE = array(POSITION_TYPECODE).itemsize

__all__ = ["SpillPolicy", "spilled_bytes"]


def spilled_bytes(support_set: "SupportSetLike") -> int:
    """Byte size of a set's columns (what :class:`SpillPolicy` budgets)."""
    if isinstance(support_set, CompressedSupportSet):
        return 3 * len(support_set.seq_indices_array) * _ITEMSIZE
    rows = len(support_set.seq_indices_array)
    return rows * (1 + support_set.row_width) * _ITEMSIZE


class SpillPolicy:
    """Move support sets whose columns exceed ``budget_bytes`` onto disk.

    Parameters
    ----------
    budget_bytes:
        Per-set threshold: a set whose columns total more than this many
        bytes is spilled.  This bounds the *resident* cost of each DFS
        frontier entry, which is the unit the engines allocate in.
    directory:
        Where spill files are created (they are unlinked immediately, so
        this only chooses the filesystem).  Defaults to the system temp
        directory.
    obs:
        Optional :class:`~repro.obs.MetricsRegistry`; the policy maintains
        ``core.spill.spills``, ``core.spill.bytes`` and
        ``core.spill.skipped`` counters (instruments pre-bound here, per
        the hot-loop rule).
    """

    __slots__ = ("budget_bytes", "enabled", "_directory", "_spills", "_bytes", "_skipped")

    def __init__(
        self,
        budget_bytes: int,
        *,
        directory: "str | None" = None,
        obs: "MetricsRegistry | None" = None,
    ) -> None:
        if budget_bytes <= 0:
            raise ValueError(f"spill budget must be positive, got {budget_bytes}")
        self.budget_bytes = budget_bytes
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
        self._directory = directory
        self.enabled = _mmap is not None and can_map_zero_copy()
        self._spills = obs.counter("core.spill.spills") if obs is not None else None
        self._bytes = obs.counter("core.spill.bytes") if obs is not None else None
        self._skipped = obs.counter("core.spill.skipped") if obs is not None else None

    def maybe_spill(self, support_set: "SupportSetLike") -> "SupportSetLike":
        """Return ``support_set``, spilled onto disk if it is over budget."""
        nbytes = spilled_bytes(support_set)
        if nbytes <= self.budget_bytes:
            return support_set
        if not self.enabled:
            if self._skipped is not None:
                self._skipped.inc()
            return support_set
        if isinstance(support_set, CompressedSupportSet):
            seqs, firsts, lasts = self._remap(
                support_set.seq_indices_array,
                support_set.firsts_array,
                support_set.lasts_array,
            )
            spilled: SupportSetLike = CompressedSupportSet.from_arrays(
                support_set.pattern, seqs, firsts, lasts
            )
        else:
            seqs, landmarks = self._remap(
                support_set.seq_indices_array, support_set.landmarks_array
            )
            spilled = SupportSet.from_arrays(
                support_set.pattern, seqs, landmarks, support_set.row_width
            )
        if self._spills is not None:
            self._spills.inc()
        if self._bytes is not None:
            self._bytes.inc(nbytes)
        return spilled

    def _remap(self, *columns: Any) -> tuple["memoryview[int]", ...]:
        """Write ``columns`` to an unlinked temp file and map them back.

        The returned views all share one read-only mapping; the mapping
        (and the disk space, already unlinked) is released when the last
        view is garbage-collected.
        """
        fd, path = tempfile.mkstemp(prefix="repro-spill-", suffix=".cols", dir=self._directory)
        try:
            with os.fdopen(fd, "wb") as handle:
                for column in columns:
                    handle.write(_raw_bytes(column))
            with open(path, "rb") as handle:
                mapping = _mmap.mmap(handle.fileno(), 0, access=_mmap.ACCESS_READ)
        finally:
            os.unlink(path)
        data = memoryview(mapping)
        views: list["memoryview[int]"] = []
        offset = 0
        for column in columns:
            end = offset + len(column) * _ITEMSIZE
            views.append(data[offset:end].cast(POSITION_TYPECODE))
            offset = end
        return tuple(views)

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"SpillPolicy(budget_bytes={self.budget_bytes}, {state})"


def _raw_bytes(column: Any) -> bytes:
    """Native-endian bytes of an int64 column (array or memoryview)."""
    if isinstance(column, array):
        return column.tobytes()
    return bytes(column)
