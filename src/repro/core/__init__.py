"""Core contribution of the paper: repetitive gapped subsequence mining.

The modules in this subpackage implement, in the paper's own vocabulary:

* :mod:`repro.core.pattern` — patterns (gapped subsequences) and the pattern
  growth / extension operations of Definitions 3.3 and 3.4.
* :mod:`repro.core.instance` — instances ``(i, <l1..lm>)``, the overlap
  relation (Definition 2.3) and non-redundant instance sets (Definition 2.4).
* :mod:`repro.core.instance_growth` — the ``INSgrow`` operation
  (Algorithm 2) and the ``supComp`` support computation (Algorithm 1).
* :mod:`repro.core.support` — repetitive support and leftmost support sets
  (Definitions 2.5 and 3.2).
* :mod:`repro.core.compressed` — the Section III-D ``(i, l1, lm)``
  representation: the constant-space engine the miners run on whenever
  ``store_instances=False`` (the default).
* :mod:`repro.core.sweep` — the (optionally numpy-vectorized) flat sweep
  behind compressed instance growth.
* :mod:`repro.core.engine` — selection between the full-landmark and the
  compressed engine.
* :mod:`repro.core.reference` — brute-force reference semantics used as test
  oracles.
* :mod:`repro.core.gsgrow` — the ``GSgrow`` miner (Algorithm 3).
* :mod:`repro.core.closure` — closure checking (Theorem 4) and landmark
  border checking (Theorem 5).
* :mod:`repro.core.clogsgrow` — the ``CloGSgrow`` closed-pattern miner
  (Algorithm 4).
* :mod:`repro.core.constraints` — the gap-constrained variant sketched as
  future work in Section V.
* :mod:`repro.core.results` — result containers shared by all miners.
"""

from repro.core.clogsgrow import CloGSgrow, mine_closed
from repro.core.compressed import CompressedSupportSet, sup_comp_compressed
from repro.core.constraints import GapConstraint
from repro.core.engine import COMPRESSED_ENGINE, FULL_LANDMARK_ENGINE, SupportEngine, engine_for
from repro.core.gsgrow import GSgrow, mine_all
from repro.core.instance import Instance, instances_overlap, is_non_redundant
from repro.core.pattern import Pattern
from repro.core.results import MinedPattern, MiningResult
from repro.core.support import SupportSet, repetitive_support, sup_comp

__all__ = [
    "Pattern",
    "Instance",
    "instances_overlap",
    "is_non_redundant",
    "SupportSet",
    "CompressedSupportSet",
    "SupportEngine",
    "FULL_LANDMARK_ENGINE",
    "COMPRESSED_ENGINE",
    "engine_for",
    "repetitive_support",
    "sup_comp",
    "sup_comp_compressed",
    "GSgrow",
    "mine_all",
    "CloGSgrow",
    "mine_closed",
    "GapConstraint",
    "MinedPattern",
    "MiningResult",
]
