"""Instances, landmarks and the overlap relation.

An *instance* of a pattern ``P = e1..em`` in ``SeqDB`` is a pair
``(i, <l1, ..., lm>)`` of a 1-based sequence index and a landmark — a strictly
increasing list of 1-based positions with ``S_i[l_j] = e_j``
(Definitions 2.1 and 2.2).

Two instances *overlap* (Definition 2.3) iff they live in the same sequence
and agree on at least one landmark position *at the same pattern index*.
Note the per-index comparison: as the paper's ``ABA`` example stresses,
instances may reuse the same sequence position at *different* pattern indices
and still be non-overlapping.

A set of pairwise non-overlapping instances is *non-redundant*
(Definition 2.4); the repetitive support of a pattern is the maximum size of
such a set (Definition 2.5, implemented in :mod:`repro.core.support`).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence as PySequence

from repro.core.pattern import Pattern
from repro.db.database import SequenceDatabase


class Instance:
    """An instance ``(i, <l1, ..., lm>)`` of a pattern.

    Attributes
    ----------
    seq_index:
        The 1-based index ``i`` of the sequence the instance lives in.
    landmark:
        The landmark ``<l1, ..., lm>`` as a tuple of strictly increasing
        1-based positions.
    """

    __slots__ = ("seq_index", "landmark")

    def __init__(self, seq_index: int, landmark: PySequence[int]):
        landmark = tuple(landmark)
        if seq_index < 1:
            raise ValueError(f"sequence index must be >= 1, got {seq_index}")
        if any(b <= a for a, b in zip(landmark, landmark[1:], strict=False)):
            raise ValueError(f"landmark positions must be strictly increasing: {landmark}")
        if landmark and landmark[0] < 1:
            raise ValueError(f"landmark positions must be >= 1: {landmark}")
        self.seq_index = seq_index
        self.landmark = landmark

    # ------------------------------------------------------------------
    # Landmark accessors
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.landmark)

    @property
    def first(self) -> int:
        """First landmark position ``l1``."""
        return self.landmark[0]

    @property
    def last(self) -> int:
        """Last landmark position ``lm`` (drives the right-shift order)."""
        return self.landmark[-1]

    def compressed(self) -> tuple[int, int, int]:
        """The compressed triple ``(i, l1, lm)`` of Section III-D."""
        return (self.seq_index, self.first, self.last)

    def extend(self, position: int) -> Instance:
        """Return a new instance with ``position`` appended to the landmark."""
        return Instance(self.seq_index, self.landmark + (position,))

    def drop_index(self, j: int) -> Instance:
        """Return the instance with the 1-based landmark index ``j`` removed.

        This is the ``ins_{-j}`` construction used in the proof of Lemma 1.
        """
        if j < 1 or j > len(self.landmark):
            raise IndexError(f"landmark index {j} out of range 1..{len(self.landmark)}")
        return Instance(self.seq_index, self.landmark[: j - 1] + self.landmark[j:])

    def right_shift_key(self) -> tuple[int, int]:
        """Sort key realising the right-shift order of Definition 3.1."""
        return (self.seq_index, self.last)

    # ------------------------------------------------------------------
    # Semantics checks
    # ------------------------------------------------------------------
    def matches(self, pattern: Pattern, database: SequenceDatabase) -> bool:
        """True if this instance really is an instance of ``pattern`` in ``database``."""
        pattern = Pattern(pattern)
        if len(self.landmark) != len(pattern):
            return False
        if self.seq_index > len(database):
            return False
        seq = database.sequence(self.seq_index)
        if self.landmark and self.last > len(seq):
            return False
        return all(seq.at(l) == e for l, e in zip(self.landmark, pattern.events, strict=False))

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __eq__(self, other) -> bool:
        if isinstance(other, Instance):
            return self.seq_index == other.seq_index and self.landmark == other.landmark
        if isinstance(other, tuple) and len(other) == 2:
            return self.seq_index == other[0] and self.landmark == tuple(other[1])
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.seq_index, self.landmark))

    def __repr__(self) -> str:
        positions = ", ".join(str(p) for p in self.landmark)
        return f"({self.seq_index}, <{positions}>)"


def instances_overlap(a: Instance, b: Instance) -> bool:
    """The overlap relation of Definition 2.3.

    Two instances of the same pattern overlap iff they are in the same
    sequence and share a position at the same landmark index.
    """
    if a.seq_index != b.seq_index:
        return False
    if len(a.landmark) != len(b.landmark):
        raise ValueError(
            "overlap is only defined between instances of the same pattern "
            f"(landmark lengths {len(a.landmark)} and {len(b.landmark)} differ)"
        )
    return any(la == lb for la, lb in zip(a.landmark, b.landmark, strict=False))


def is_non_redundant(instances: Iterable[Instance]) -> bool:
    """True if ``instances`` are pairwise non-overlapping (Definition 2.4)."""
    instances = list(instances)
    return not any(
        instances_overlap(a, b)
        for idx, a in enumerate(instances)
        for b in instances[idx + 1 :]
    )


def sort_right_shift(instances: Iterable[Instance]) -> list[Instance]:
    """Return instances sorted in the right-shift order (Definition 3.1)."""
    return sorted(instances, key=Instance.right_shift_key)
