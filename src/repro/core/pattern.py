"""Patterns (gapped subsequences).

A pattern ``P = e1 e2 ... em`` is itself a sequence of events
(Definition 2.1).  :class:`Pattern` is an immutable, hashable tuple of events
with the operations the mining algorithms need:

* ``P.grow(e)`` — the pattern growth ``P ∘ e`` of Definition 3.3;
* ``P.concat(Q)`` — ``P ∘ Q`` for a whole pattern ``Q``;
* ``P.insert(j, e)`` / ``P.extensions(e)`` — the three extension cases of
  Definition 3.4 (append, insert, prepend);
* sub-pattern / super-pattern tests (Definition 2.1).
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Sequence as PySequence

from repro.db.sequence import Event, format_events


class Pattern:
    """An immutable pattern ``e1 e2 ... em``.

    Patterns compare equal to (and hash like) other patterns with the same
    events; they can be built from strings (single-character events), lists,
    tuples or other patterns.
    """

    __slots__ = ("_events",)

    def __init__(self, events: Iterable[Event] = ()):
        if isinstance(events, Pattern):
            self._events: tuple[Event, ...] = events._events
        elif isinstance(events, str):
            self._events = tuple(events)
        else:
            self._events = tuple(events)

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    @property
    def events(self) -> tuple[Event, ...]:
        """The events of the pattern as a tuple."""
        return self._events

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index):
        result = self._events[index]
        if isinstance(index, slice):
            return Pattern(result)
        return result

    def at(self, j: int) -> Event:
        """Return event ``e_j`` for 1-based ``j`` (the paper's indexing)."""
        if j < 1 or j > len(self._events):
            raise IndexError(f"pattern index {j} out of range 1..{len(self._events)}")
        return self._events[j - 1]

    def __eq__(self, other) -> bool:
        if isinstance(other, Pattern):
            return self._events == other._events
        if isinstance(other, (tuple, list)):
            return self._events == tuple(other)
        if isinstance(other, str):
            return self._events == tuple(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._events)

    def __lt__(self, other: Pattern) -> bool:
        # Lexicographic by repr of events: gives deterministic report ordering
        # even for mixed event types.
        if not isinstance(other, Pattern):
            return NotImplemented
        return [repr(e) for e in self._events] < [repr(e) for e in other._events]

    def __repr__(self) -> str:
        return f"Pattern({format_events(self._events)!r})"

    def __str__(self) -> str:
        return format_events(self._events)

    def is_empty(self) -> bool:
        """True for the empty pattern (length 0)."""
        return not self._events

    # ------------------------------------------------------------------
    # Growth and extension (Definitions 3.3 and 3.4)
    # ------------------------------------------------------------------
    def grow(self, event: Event) -> Pattern:
        """Return ``P ∘ e``: the pattern with ``event`` appended."""
        return Pattern(self._events + (event,))

    def concat(self, other: Pattern) -> Pattern:
        """Return ``P ∘ Q``: this pattern followed by all events of ``other``."""
        other = Pattern(other)
        return Pattern(self._events + other._events)

    def prefix(self, j: int) -> Pattern:
        """Return the length-``j`` prefix ``e1 ... ej`` (``j`` may be 0)."""
        if j < 0 or j > len(self._events):
            raise IndexError(f"prefix length {j} out of range 0..{len(self._events)}")
        return Pattern(self._events[:j])

    def suffix_from(self, j: int) -> Pattern:
        """Return the suffix ``e(j+1) ... em`` (events after 1-based index j)."""
        if j < 0 or j > len(self._events):
            raise IndexError(f"suffix start {j} out of range 0..{len(self._events)}")
        return Pattern(self._events[j:])

    def insert(self, gap: int, event: Event) -> Pattern:
        """Insert ``event`` into gap ``gap`` (0 = before e1, m = after em).

        This realises all three extension cases of Definition 3.4: ``gap=0``
        is a prepend, ``gap=len(P)`` an append, anything in between an
        insertion.
        """
        if gap < 0 or gap > len(self._events):
            raise IndexError(f"gap {gap} out of range 0..{len(self._events)}")
        return Pattern(self._events[:gap] + (event,) + self._events[gap:])

    def extensions(self, event: Event) -> list["Pattern"]:
        """All distinct extensions of this pattern w.r.t. ``event``."""
        seen = set()
        result: list[Pattern] = []
        for gap in range(len(self._events) + 1):
            extended = self.insert(gap, event)
            if extended not in seen:
                seen.add(extended)
                result.append(extended)
        return result

    # ------------------------------------------------------------------
    # Sub-pattern relations (Definition 2.1)
    # ------------------------------------------------------------------
    def is_subpattern_of(self, other: Pattern) -> bool:
        """True if this pattern is a (gapped) subsequence of ``other``."""
        other = Pattern(other)
        it = iter(other._events)
        return all(any(o == e for o in it) for e in self._events)

    def is_superpattern_of(self, other: Pattern) -> bool:
        """True if ``other`` is a (gapped) subsequence of this pattern."""
        return Pattern(other).is_subpattern_of(self)

    def is_proper_subpattern_of(self, other: Pattern) -> bool:
        """True if this is a subpattern of ``other`` and the two differ."""
        other = Pattern(other)
        return len(self) < len(other) and self.is_subpattern_of(other)

    def distinct_events(self) -> set:
        """The set of distinct events in the pattern (used by the density filter)."""
        return set(self._events)


def as_pattern(obj) -> Pattern:
    """Coerce strings, iterables, events or Patterns into a :class:`Pattern`."""
    if isinstance(obj, Pattern):
        return obj
    if isinstance(obj, (str, list, tuple)):
        return Pattern(obj)
    if isinstance(obj, Hashable):
        return Pattern((obj,))
    raise TypeError(f"cannot interpret {obj!r} as a pattern")
