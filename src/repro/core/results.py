"""Result containers shared by the miners.

A mining run produces a :class:`MiningResult`, an ordered collection of
:class:`MinedPattern` entries (pattern, support, optional support set and
per-sequence instance counts).  The container offers the filtering and
look-up operations the experiments, the post-processing steps of the case
study and the analysis helpers need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Iterator

from repro.core.pattern import Pattern, as_pattern
from repro.core.support import SupportSet


@dataclass(frozen=True)
class MinedPattern:
    """One mined pattern together with its repetitive support.

    Attributes
    ----------
    pattern:
        The mined pattern.
    support:
        Its repetitive support ``sup(P)``.
    support_set:
        The leftmost support set, if the miner was asked to keep instances
        (``store_instances=True``); ``None`` under the default configuration,
        where the DFS runs on the compressed ``(i, l1, lm)`` engine and
        never materialises landmark rows.  To recover the instances of a
        specific pattern afterwards, run
        :func:`repro.core.support.sup_comp` on the database.
    per_sequence:
        Number of support-set instances per sequence index — the feature
        values suggested in the paper's future-work section.  Only populated
        when instances were kept.
    """

    pattern: Pattern
    support: int
    support_set: SupportSet | None = field(default=None, compare=False, repr=False)
    per_sequence: dict[int, int] = field(default_factory=dict, compare=False, repr=False)

    def __post_init__(self):
        if self.support < 0:
            raise ValueError("support must be non-negative")

    def __len__(self) -> int:
        return len(self.pattern)

    def density(self) -> float:
        """Fraction of distinct events in the pattern (case-study density filter)."""
        if len(self.pattern) == 0:
            return 0.0
        return len(self.pattern.distinct_events()) / len(self.pattern)

    def describe(self) -> str:
        """Compact single-line rendering, e.g. ``ACB (sup=3)``."""
        return f"{self.pattern!s} (sup={self.support})"


class MiningResult:
    """An ordered collection of :class:`MinedPattern` entries.

    Iteration order is the miners' discovery order (DFS order); use
    :meth:`sorted_by_support` or :meth:`sorted_by_length` for report-friendly
    orderings.
    """

    def __init__(self, patterns: Iterable[MinedPattern] = (), *, min_sup: int | None = None,
                 algorithm: str | None = None, stats: dict | None = None):
        self._patterns: list[MinedPattern] = list(patterns)
        self._by_pattern: dict[Pattern, MinedPattern] = {p.pattern: p for p in self._patterns}
        self.min_sup = min_sup
        self.algorithm = algorithm
        #: Run statistics (counters + per-phase durations) attached by the
        #: miner — ``MiningStats.as_dict()`` shape; ``None`` for results built
        #: by hand or filtered views.
        self.stats = stats

    # ------------------------------------------------------------------
    # Collection protocol
    # ------------------------------------------------------------------
    def add(self, mined: MinedPattern) -> None:
        """Append an entry (replacing any previous entry for the same pattern)."""
        if mined.pattern in self._by_pattern:
            self._patterns = [p for p in self._patterns if p.pattern != mined.pattern]
        self._patterns.append(mined)
        self._by_pattern[mined.pattern] = mined

    def __len__(self) -> int:
        return len(self._patterns)

    def __iter__(self) -> Iterator[MinedPattern]:
        return iter(self._patterns)

    def __contains__(self, pattern) -> bool:
        return as_pattern(pattern) in self._by_pattern

    def __getitem__(self, pattern) -> MinedPattern:
        return self._by_pattern[as_pattern(pattern)]

    def __repr__(self) -> str:
        label = f" by {self.algorithm}" if self.algorithm else ""
        return f"<MiningResult{label}: {len(self)} patterns>"

    # ------------------------------------------------------------------
    # Look-ups
    # ------------------------------------------------------------------
    def support_of(self, pattern) -> int:
        """Support of ``pattern``; raises ``KeyError`` if it was not mined."""
        return self[pattern].support

    def get(self, pattern, default=None) -> MinedPattern | None:
        """Entry for ``pattern`` or ``default``."""
        return self._by_pattern.get(as_pattern(pattern), default)

    def patterns(self) -> list[Pattern]:
        """All mined patterns in discovery order."""
        return [p.pattern for p in self._patterns]

    def as_dict(self) -> dict[Pattern, int]:
        """Mapping pattern -> support."""
        return {p.pattern: p.support for p in self._patterns}

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def sorted_by_support(self, descending: bool = True) -> list[MinedPattern]:
        """Entries sorted by support (ties broken by pattern order)."""
        return sorted(self._patterns, key=lambda p: (-p.support if descending else p.support, p.pattern))

    def sorted_by_length(self, descending: bool = True) -> list[MinedPattern]:
        """Entries sorted by pattern length (the case study's ranking step)."""
        return sorted(
            self._patterns,
            key=lambda p: (-len(p.pattern) if descending else len(p.pattern), -p.support, p.pattern),
        )

    def filter(self, predicate: Callable[[MinedPattern], bool]) -> MiningResult:
        """A new result containing only entries satisfying ``predicate``."""
        return MiningResult(
            [p for p in self._patterns if predicate(p)],
            min_sup=self.min_sup,
            algorithm=self.algorithm,
            stats=self.stats,
        )

    def with_min_length(self, length: int) -> MiningResult:
        """Entries whose pattern has at least ``length`` events."""
        return self.filter(lambda p: len(p.pattern) >= length)

    def with_support_at_least(self, support: int) -> MiningResult:
        """Entries with support at least ``support``."""
        return self.filter(lambda p: p.support >= support)

    def longest(self) -> MinedPattern | None:
        """The longest mined pattern (highest support among ties), or None."""
        ranked = self.sorted_by_length()
        return ranked[0] if ranked else None

    def most_frequent(self, min_length: int = 1) -> MinedPattern | None:
        """The highest-support pattern of at least ``min_length`` events, or None."""
        candidates = [p for p in self._patterns if len(p.pattern) >= min_length]
        if not candidates:
            return None
        return max(candidates, key=lambda p: (p.support, len(p.pattern)))

    # ------------------------------------------------------------------
    # Relations between result sets
    # ------------------------------------------------------------------
    def is_subset_of(self, other: MiningResult) -> bool:
        """True if every pattern here appears in ``other`` with the same support."""
        return all(
            other.get(p.pattern) is not None and other[p.pattern].support == p.support
            for p in self._patterns
        )

    def maximal_patterns(self) -> MiningResult:
        """Entries whose pattern is not a subpattern of any other mined pattern.

        This is the *maximality* post-processing step of the case study
        (Section IV-B), applied within this result set.
        """
        kept: list[MinedPattern] = []
        for p in self._patterns:
            if not any(
                p.pattern.is_proper_subpattern_of(q.pattern) for q in self._patterns if q is not p
            ):
                kept.append(p)
        return MiningResult(kept, min_sup=self.min_sup, algorithm=self.algorithm)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        """A JSON-serialisable dictionary of patterns, supports and metadata.

        The inverse of :meth:`from_json`.  Pattern events must be
        JSON-representable (strings / numbers); support sets and per-sequence
        counts are *not* serialised — they are recomputable from a database,
        while the pattern/support table is the part worth persisting (it is
        also what :class:`repro.match.store.PatternStore` wraps).  ``closed``
        records whether the producing algorithm mined closed patterns
        (``None`` when the result carries no algorithm name); ``stats`` is
        the miner's run statistics when present.
        """
        algorithm = self.algorithm
        payload = {
            "min_sup": self.min_sup,
            "algorithm": algorithm,
            "closed": None if algorithm is None else "clo" in algorithm.lower(),
            "patterns": [
                {"events": list(p.pattern.events), "support": p.support}
                for p in self._patterns
            ],
        }
        if self.stats is not None:
            payload["stats"] = self.stats
        return payload

    @classmethod
    def from_json(cls, data: dict) -> MiningResult:
        """Rebuild a result from :meth:`to_json` output (extra keys ignored)."""
        patterns = [
            MinedPattern(pattern=Pattern(entry["events"]), support=entry["support"])
            for entry in data.get("patterns", ())
        ]
        return cls(
            patterns,
            min_sup=data.get("min_sup"),
            algorithm=data.get("algorithm"),
            stats=data.get("stats"),
        )

    def summary(self) -> str:
        """Human-readable one-line summary used by the experiment reports."""
        if not self._patterns:
            return "0 patterns"
        longest = self.longest()
        return (
            f"{len(self._patterns)} patterns, longest length {len(longest.pattern)}, "
            f"max support {max(p.support for p in self._patterns)}"
        )
