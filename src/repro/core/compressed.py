"""Compressed instance storage (Section III-D).

For mining purposes an instance ``(i, <l1, ..., ln>)`` never needs its full
landmark: instance growth only looks at the *last* position, the landmark
border checking only compares last positions, and reporting only needs the
span of the instance.  The paper therefore stores each instance as the triple
``(i, l1, ln)`` — constant space per instance.

This module provides that representation as a drop-in alternative for
support computation:

* :class:`CompressedSupportSet` — triples in right-shift order;
* :func:`ins_grow_compressed` — Algorithm 2 over triples;
* :func:`sup_comp_compressed` — Algorithm 1 over triples;
* :func:`compress` / equality helpers used by the equivalence tests.

The main miners keep full landmarks (instances are part of the public
result), but the equivalence of the two implementations is tested, and the
compressed form is the right choice when only supports are needed over very
large databases.
"""

from __future__ import annotations

from typing import List, Optional, Sequence as PySequence, Tuple, Union

from repro.core.constraints import GapConstraint
from repro.core.pattern import Pattern, as_pattern
from repro.core.support import SupportSet
from repro.db.database import SequenceDatabase
from repro.db.index import NO_POSITION, InvertedEventIndex
from repro.db.sequence import Event

#: A compressed instance: (sequence index, first landmark position, last landmark position).
CompressedInstance = Tuple[int, int, int]


class CompressedSupportSet:
    """A support set stored as ``(i, first, last)`` triples.

    Triples are kept in right-shift order (ascending sequence index, then
    ascending last position), mirroring :class:`~repro.core.support.SupportSet`.
    """

    __slots__ = ("pattern", "_triples")

    def __init__(self, pattern, triples: PySequence[CompressedInstance] = ()):
        self.pattern = as_pattern(pattern)
        self._triples: List[CompressedInstance] = sorted(triples, key=lambda t: (t[0], t[2]))

    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self):
        return iter(self._triples)

    def __eq__(self, other) -> bool:
        if isinstance(other, CompressedSupportSet):
            return self.pattern == other.pattern and self._triples == other._triples
        return NotImplemented

    def __repr__(self) -> str:
        return f"CompressedSupportSet({self.pattern!s}, {self._triples!r})"

    @property
    def support(self) -> int:
        """The number of instances (= ``sup(P)`` for genuine support sets)."""
        return len(self._triples)

    @property
    def triples(self) -> List[CompressedInstance]:
        """The ``(i, first, last)`` triples in right-shift order."""
        return list(self._triples)

    def last_positions(self) -> List[Tuple[int, int]]:
        """``(i, last)`` pairs — the landmark border of Theorem 5."""
        return [(i, last) for i, _, last in self._triples]

    def per_sequence_counts(self) -> dict:
        """Number of instances per sequence index."""
        counts: dict = {}
        for i, _, _ in self._triples:
            counts[i] = counts.get(i, 0) + 1
        return counts


def initial_compressed_support_set(index: InvertedEventIndex, event: Event) -> CompressedSupportSet:
    """Compressed leftmost support set of the size-1 pattern ``event``."""
    triples = [(i, pos, pos) for i, pos in index.size_one_instances(event)]
    return CompressedSupportSet(Pattern((event,)), triples)


def ins_grow_compressed(
    index: InvertedEventIndex,
    support_set: CompressedSupportSet,
    event: Event,
    constraint: Optional[GapConstraint] = None,
) -> CompressedSupportSet:
    """Algorithm 2 over compressed instances.

    Identical control flow to :func:`repro.core.instance_growth.ins_grow`;
    only the per-instance state differs (the last position is all that is
    needed to extend, the first position is carried along unchanged).
    """
    grown_pattern = support_set.pattern.grow(event)
    extended: List[CompressedInstance] = []
    groups: dict = {}
    for triple in support_set:
        groups.setdefault(triple[0], []).append(triple)
    for i in sorted(groups):
        last_position = 0
        for seq_index, first, last in groups[i]:
            lowest = max(last_position, last)
            if constraint is not None:
                lowest = max(lowest, constraint.lowest_allowed(last))
            position = index.next_position(i, event, lowest)
            if position == NO_POSITION:
                break
            if constraint is not None and not constraint.allows(last, int(position)):
                continue
            last_position = int(position)
            extended.append((seq_index, first, last_position))
    return CompressedSupportSet(grown_pattern, extended)


def sup_comp_compressed(
    database_or_index: Union[SequenceDatabase, InvertedEventIndex],
    pattern,
    constraint: Optional[GapConstraint] = None,
) -> CompressedSupportSet:
    """Algorithm 1 over compressed instances (returns triples, not landmarks)."""
    pattern = as_pattern(pattern)
    if pattern.is_empty():
        raise ValueError("the empty pattern has no well-defined support set")
    index = (
        database_or_index
        if isinstance(database_or_index, InvertedEventIndex)
        else InvertedEventIndex(database_or_index)
    )
    current = initial_compressed_support_set(index, pattern.at(1))
    for j in range(2, len(pattern) + 1):
        current = ins_grow_compressed(index, current, pattern.at(j), constraint=constraint)
    return current


def compress(support_set: SupportSet) -> CompressedSupportSet:
    """Convert a full-landmark support set into its compressed form."""
    return CompressedSupportSet(support_set.pattern, support_set.compressed())


def equivalent(full: SupportSet, compressed: CompressedSupportSet) -> bool:
    """True if a full support set and a compressed one describe the same instances."""
    return (
        full.pattern == compressed.pattern
        and full.compressed() == compressed.triples
    )
