"""Compressed instance storage (Section III-D) — the default mining engine.

For mining purposes an instance ``(i, <l1, ..., ln>)`` never needs its full
landmark: instance growth only looks at the *last* position, landmark border
checking (Theorem 5) only compares last positions, and reporting only needs
the span of the instance.  The paper therefore stores each instance as the
triple ``(i, l1, ln)`` — constant space per instance, independent of the
pattern length.

This module implements that representation with the same array-backed design
as the full-landmark engine (:mod:`repro.core.support` /
:mod:`repro.core.instance_growth`):

* :class:`CompressedSupportSet` — three parallel ``array('q')`` columns
  (sequence index, first position, last position) in right-shift order, with
  a trusted :meth:`~CompressedSupportSet.from_arrays` constructor on the
  growth path;
* :func:`ins_grow_compressed` — Algorithm 2 as a single flat sweep over the
  columns: the event is resolved to its interned id once per call, position
  lists are fetched once per sequence run, and the unconstrained sweep is
  numpy-vectorized when available (:mod:`repro.core.sweep`);
* :func:`sup_comp_compressed` — Algorithm 1 over triples;
* :func:`compress` / :func:`equivalent` — conversion and equality helpers
  used by the engine-equivalence tests.

Whenever ``MinerConfig.store_instances`` is ``False`` (the default), the
miners, the closure checker and the streaming support queries all run on
this representation (see :mod:`repro.core.engine`); the full-landmark engine
is selected only when callers ask to keep instances.  Both engines produce
identical patterns and supports — growth reads exactly the same state from
either representation.
"""

from __future__ import annotations

from array import array
from collections.abc import Iterator, Sequence as PySequence

from repro.core import sweep
from repro.core.constraints import GapConstraint
from repro.core.pattern import Pattern, as_pattern
from repro.core.support import SupportSet
from repro.db.database import SequenceDatabase
from repro.db.index import POSITION_TYPECODE, InvertedEventIndex
from repro.db.sequence import Event

#: A compressed instance: (sequence index, first landmark position, last landmark position).
CompressedInstance = tuple[int, int, int]

#: When true, :meth:`CompressedSupportSet.from_arrays` additionally verifies
#: right-shift order — an O(n)-per-growth-step check that instance growth
#: makes redundant by construction (Lemma 4), so it stays off on production
#: paths (mirroring :meth:`SupportSet.from_arrays`, which never validates).
#: The engine-equivalence test suites flip it on, so any sweep change that
#: emits out-of-order triples fails loudly there.
VALIDATE_ORDER = False


def _is_right_shift_ordered(seqs: array[int], lasts: array[int]) -> bool:
    """True if ``(seq, last)`` pairs are strictly increasing (right-shift order)."""
    return all(
        (seqs[k], lasts[k]) < (seqs[k + 1], lasts[k + 1]) for k in range(len(seqs) - 1)
    )


class CompressedSupportSet:
    """A support set stored as ``(i, first, last)`` triples.

    Storage is columnar: three parallel ``array('q')`` columns hold the
    sequence indices, first positions and last positions, kept in right-shift
    order (ascending sequence index, then ascending last position) —
    mirroring :class:`~repro.core.support.SupportSet`.  The arrays must not
    be mutated by callers.

    The triple-accepting constructor sorts its input (user convenience);
    the engine builds sets through :meth:`from_arrays`, which trusts the
    order instead of paying an O(n log n) sort per growth step.
    """

    __slots__ = ("pattern", "_seqs", "_firsts", "_lasts")

    def __init__(
        self,
        pattern: Pattern | str | PySequence[Event],
        triples: PySequence[CompressedInstance] = (),
    ) -> None:
        self.pattern = as_pattern(pattern)
        ordered = sorted(triples, key=lambda t: (t[0], t[2]))
        seqs = array(POSITION_TYPECODE)
        firsts = array(POSITION_TYPECODE)
        lasts = array(POSITION_TYPECODE)
        for i, first, last in ordered:
            seqs.append(i)
            firsts.append(first)
            lasts.append(last)
        self._seqs = seqs
        self._firsts = firsts
        self._lasts = lasts

    @classmethod
    def from_arrays(
        cls,
        pattern: Pattern | str | PySequence[Event],
        seqs: array[int],
        firsts: array[int],
        lasts: array[int],
    ) -> CompressedSupportSet:
        """Trusted constructor used by the engine.

        The columns must already be in right-shift order; no sorting is
        performed (instance growth emits right-shift order by construction —
        Lemma 4).  The order is re-checked only when the module's
        :data:`VALIDATE_ORDER` debug flag is on, as in the equivalence test
        suites.
        """
        assert len(seqs) == len(firsts) == len(lasts), "column arrays must align"
        assert not VALIDATE_ORDER or _is_right_shift_ordered(
            seqs, lasts
        ), "columns must be in right-shift order"
        self = cls.__new__(cls)
        self.pattern = as_pattern(pattern)
        self._seqs = seqs
        self._firsts = firsts
        self._lasts = lasts
        return self

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._seqs)

    def __iter__(self) -> Iterator[CompressedInstance]:
        return iter(zip(self._seqs, self._firsts, self._lasts, strict=False))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, CompressedSupportSet):
            return (
                self.pattern == other.pattern
                and self._seqs == other._seqs
                and self._firsts == other._firsts
                and self._lasts == other._lasts
            )
        return NotImplemented

    def __repr__(self) -> str:
        return f"CompressedSupportSet({self.pattern!s}, {self.triples!r})"

    # ------------------------------------------------------------------
    # Array accessors used by the engine (read-only!)
    # ------------------------------------------------------------------
    @property
    def seq_indices_array(self) -> array[int]:
        """Flat array of sequence indices, one per instance."""
        return self._seqs

    @property
    def firsts_array(self) -> array[int]:
        """Flat array of first landmark positions, one per instance."""
        return self._firsts

    @property
    def lasts_array(self) -> array[int]:
        """Flat array of last landmark positions, one per instance."""
        return self._lasts

    def border_arrays(self) -> tuple[array[int], array[int]]:
        """The landmark border as ``(sequence indices, last positions)`` arrays."""
        return self._seqs, self._lasts

    # ------------------------------------------------------------------
    # Accessors used by the miners and tests
    # ------------------------------------------------------------------
    @property
    def support(self) -> int:
        """The number of instances (= ``sup(P)`` for genuine support sets)."""
        return len(self._seqs)

    @property
    def triples(self) -> list[CompressedInstance]:
        """The ``(i, first, last)`` triples in right-shift order."""
        return list(zip(self._seqs, self._firsts, self._lasts, strict=False))

    def last_positions(self) -> list[tuple[int, int]]:
        """``(i, last)`` pairs — the landmark border of Theorem 5."""
        return list(zip(self._seqs, self._lasts, strict=False))

    def per_sequence_counts(self) -> dict[int, int]:
        """Number of instances per sequence index."""
        counts: dict[int, int] = {}
        get = counts.get  # hoisted: one bound-method lookup for the sweep
        # reprolint: hot-loop
        for seq in self._seqs:
            counts[seq] = get(seq, 0) + 1
        return counts


def initial_compressed_support_set(index: InvertedEventIndex, event: Event) -> CompressedSupportSet:
    """Compressed leftmost support set of the size-1 pattern ``event``.

    For a single event first and last position coincide, so the columns are
    the index's occurrence arrays (already in right-shift order).
    """
    seqs, positions = index.size_one_arrays(event)
    return CompressedSupportSet.from_arrays(Pattern((event,)), seqs, positions[:], positions)


def ins_grow_compressed(
    index: InvertedEventIndex,
    support_set: CompressedSupportSet,
    event: Event,
    constraint: GapConstraint | None = None,
) -> CompressedSupportSet:
    """Algorithm 2 (``INSgrow``) over compressed instances.

    Identical greedy control flow to
    :func:`repro.core.instance_growth.ins_grow`; only the per-instance state
    differs — the last position is all that is needed to extend, the first
    position is carried along unchanged, and no landmark rows are copied.
    The event is resolved to its interned id exactly once per call (one hash
    of the user object); the unconstrained sweep dispatches through
    :func:`repro.core.sweep.grow_triples` and is numpy-vectorized for large
    sets when numpy is importable.
    """
    grown_pattern = support_set.pattern.grow(event)
    seqs = support_set.seq_indices_array
    n = len(seqs)
    eid = index.event_id(event)
    if eid < 0 or n == 0:
        empty = array(POSITION_TYPECODE)
        return CompressedSupportSet.from_arrays(grown_pattern, empty, empty[:], empty[:])
    columns = sweep.grow_triples(
        seqs,
        support_set.firsts_array,
        support_set.lasts_array,
        index.raw_positions_by_id,
        eid,
        constraint,
    )
    return CompressedSupportSet.from_arrays(grown_pattern, *columns)


def sup_comp_compressed(
    database_or_index: SequenceDatabase | InvertedEventIndex,
    pattern: Pattern | str | PySequence[Event],
    constraint: GapConstraint | None = None,
) -> CompressedSupportSet:
    """Algorithm 1 over compressed instances (returns triples, not landmarks).

    This is the support query behind :func:`repro.core.support.repetitive_support`
    and the streaming gap-filling calls — callers that only need ``sup(P)``
    never pay for full landmarks.

    Example
    -------
    >>> from repro.db import SequenceDatabase
    >>> db = SequenceDatabase.from_strings(["AABCDABB", "ABCD"])
    >>> compressed = sup_comp_compressed(db, "AB")
    >>> compressed.support, compressed.triples
    (4, [(1, 1, 3), (1, 2, 7), (1, 6, 8), (2, 1, 2)])
    """
    pattern = as_pattern(pattern)
    if pattern.is_empty():
        raise ValueError("the empty pattern has no well-defined support set")
    index = (
        database_or_index
        if isinstance(database_or_index, InvertedEventIndex)
        else InvertedEventIndex(database_or_index)
    )
    current = initial_compressed_support_set(index, pattern.at(1))
    for j in range(2, len(pattern) + 1):
        current = ins_grow_compressed(index, current, pattern.at(j), constraint=constraint)
    return current


def compress(support_set: SupportSet) -> CompressedSupportSet:
    """Convert a full-landmark support set into its compressed form."""
    return CompressedSupportSet(support_set.pattern, support_set.compressed())


def equivalent(full: SupportSet, compressed: CompressedSupportSet) -> bool:
    """True if a full support set and a compressed one describe the same instances."""
    return (
        full.pattern == compressed.pattern
        and full.compressed() == compressed.triples
    )
