"""Vectorized instance-growth sweeps over compressed border arrays.

The greedy rule of Algorithm 2 looks sequential — the position consumed by
one instance becomes the lower bound of the next instance of the same
sequence — but for the *unconstrained* case it collapses into a closed form.
Within one sequence run, let ``P`` be the sorted positions of the event being
appended and ``idx_k = bisect_right(P, last_k)`` the first candidate index of
instance ``k``.  The index the greedy sweep actually consumes satisfies

    chosen_k = max(idx_k, chosen_{k-1} + 1)

(the ``+ 1`` is "strictly right of the previously consumed position", which
is exactly the next entry of the strictly increasing ``P``).  Substituting
``d_k = chosen_k - k`` turns the recurrence into a running maximum,

    chosen_k = k + max(idx_0 - 0, idx_1 - 1, ..., idx_k - k),

i.e. a ``searchsorted`` plus a cumulative maximum — both one-shot vector
operations.  ``chosen`` is strictly increasing, so once an instance runs off
the end of ``P`` every later instance of the run does too, reproducing the
``break`` of the scalar sweep (line 5 of Algorithm 2).

:func:`grow_triples` applies that closed form per sequence run over the
columnar ``(seqs, firsts, lasts)`` arrays of a
:class:`~repro.core.compressed.CompressedSupportSet`.  When numpy is
importable and the set is large enough to amortise array conversion, the
numpy path is used; otherwise a pure-python flat sweep (identical to the
one in :mod:`repro.core.instance_growth`, minus the landmark copies) runs.
Numpy is an optional accelerator, never a dependency: the position arrays of
:class:`~repro.db.index.InvertedEventIndex` are ``array('q')`` buffers, so
``np.frombuffer`` views them zero-copy, and both paths produce bit-identical
``array('q')`` outputs.

Gap-constrained growth is *not* vectorized: a ``max_gap`` rejection skips an
instance without consuming a position, which breaks the recurrence above.
Constrained calls always run the scalar sweep.
"""

from __future__ import annotations

from array import array
from bisect import bisect_right
from collections.abc import Callable
from typing import Any

from repro.core.constraints import GapConstraint
from repro.db.index import POSITION_TYPECODE

#: The numpy module when importable, else ``None``.  Typed ``Any`` because
#: numpy is an optional accelerator the type checker never requires.
_np: Any
try:  # pragma: no cover - exercised via both CI matrix legs
    import numpy as _np_module

    _np = _np_module
except ImportError:  # pragma: no cover
    _np = None

#: True when the numpy-accelerated sweep is available.
HAVE_NUMPY = _np is not None

#: Minimum number of instances before the numpy path pays for its array
#: round-trips; below this the pure-python sweep is faster.
NUMPY_MIN_ROWS = 64

#: Minimum *average run length* (instances per sequence) for the numpy path.
#: The vectorized sweep runs once per sequence run, so its per-run overhead
#: (searchsorted dispatch, arange, fancy indexing) only amortises when runs
#: are long; a support set spread thinly over many sequences is faster
#: through the scalar sweep.  The run count is measured exactly (one
#: vectorized comparison over the sequence-index column, whose boundaries the
#: numpy sweep needs anyway).
NUMPY_MIN_RUN_LENGTH = 16

_ITEMSIZE = array(POSITION_TYPECODE).itemsize

#: (sequence indices, first positions, last positions) column arrays.
TripleArrays = tuple["array[int]", "array[int]", "array[int]"]


def grow_triples(
    seqs: array[int],
    firsts: array[int],
    lasts: array[int],
    raw_positions_by_id: Callable[[int, int], Any],
    eid: int,
    constraint: GapConstraint | None = None,
) -> TripleArrays:
    """Greedy growth over ``(i, l1, lm)`` column arrays.

    Parameters
    ----------
    seqs, firsts, lasts:
        The columns of a compressed support set in right-shift order.
    raw_positions_by_id:
        :meth:`~repro.db.index.InvertedEventIndex.raw_positions_by_id` of the
        index being mined.
    eid:
        Interned id of the event being appended (resolved once by the
        caller — this function never hashes user event objects).
    constraint:
        Optional gap constraint; constrained calls always run the scalar
        sweep (a ``max_gap`` rejection skips an instance without consuming a
        position, which breaks the vectorized closed form).

    Returns
    -------
    TripleArrays
        The surviving instances' columns: sequence index and first position
        are carried over, the last position is the consumed occurrence.
    """
    n = len(seqs)
    if constraint is None and _np is not None and n >= NUMPY_MIN_ROWS:
        seqs_np = _np.frombuffer(seqs, dtype=_np.int64)
        changes = _np.flatnonzero(seqs_np[1:] != seqs_np[:-1]) + 1
        if n >= NUMPY_MIN_RUN_LENGTH * (len(changes) + 1):
            return _grow_triples_numpy(
                seqs_np, firsts, lasts, raw_positions_by_id, eid, changes
            )
    return _grow_triples_python(seqs, firsts, lasts, raw_positions_by_id, eid, constraint)


def _grow_triples_python(
    seqs: array[int],
    firsts: array[int],
    lasts: array[int],
    raw_positions_by_id: Callable[[int, int], Any],
    eid: int,
    constraint: GapConstraint | None = None,
) -> TripleArrays:
    """Scalar flat sweep (the fallback, small-set fast path, and the only
    constrained path); control flow mirrors
    :func:`repro.core.instance_growth.ins_grow`."""
    n = len(seqs)
    out_seqs = array(POSITION_TYPECODE, bytes(_ITEMSIZE * n))
    out_firsts = array(POSITION_TYPECODE, bytes(_ITEMSIZE * n))
    out_lasts = array(POSITION_TYPECODE, bytes(_ITEMSIZE * n))
    # Bound methods hoisted so the sweep never re-runs the attribute
    # descriptor lookups per instance.
    lowest_allowed = None if constraint is None else constraint.lowest_allowed
    allows = None if constraint is None else constraint.allows
    count = 0
    prev_seq = -1
    skip_seq = -1
    last_position = 0
    plist = None
    plen = 0
    # reprolint: hot-loop
    for k in range(n):
        i = seqs[k]
        if i == skip_seq:
            continue
        if i != prev_seq:
            prev_seq = i
            last_position = 0
            plist = raw_positions_by_id(i, eid)
            if not plist:
                skip_seq = i
                continue
            plen = len(plist)
        last = lasts[k]
        lowest = last if last >= last_position else last_position
        if lowest_allowed is not None:
            bound = lowest_allowed(last)
            if bound > lowest:
                lowest = bound
        idx = bisect_right(plist, lowest)
        if idx >= plen:
            skip_seq = i
            continue
        position = plist[idx]
        if allows is not None and not allows(last, position):
            # Under a maximum-gap constraint the nearest occurrence may be
            # too far away for *this* instance while still usable by a later
            # one, so skip rather than break.
            continue
        last_position = position
        out_seqs[count] = i
        out_firsts[count] = firsts[k]
        out_lasts[count] = position
        count += 1
    if count < n:
        out_seqs = out_seqs[:count]
        out_firsts = out_firsts[:count]
        out_lasts = out_lasts[:count]
    return out_seqs, out_firsts, out_lasts


def _grow_triples_numpy(
    seqs: Any,
    firsts: array[int],
    lasts: array[int],
    raw_positions_by_id: Callable[[int, int], Any],
    eid: int,
    changes: Any = None,
) -> TripleArrays:
    """Closed-form sweep: one searchsorted + cumulative maximum per run.

    ``seqs`` may be the raw ``array('q')`` column or an ``np.int64`` view of
    it; ``changes`` are the precomputed run boundaries, if the caller (the
    :func:`grow_triples` gate) already paid for them.
    """
    np = _np
    seqs_np = seqs if isinstance(seqs, np.ndarray) else np.frombuffer(seqs, dtype=np.int64)
    lasts_np = np.frombuffer(lasts, dtype=np.int64)
    n = len(seqs_np)
    keep = np.zeros(n, dtype=bool)
    new_lasts = np.empty(n, dtype=np.int64)
    if changes is None:
        # Instances of one sequence are contiguous in right-shift order, so
        # the run boundaries are the points where the sequence index changes.
        changes = np.flatnonzero(seqs_np[1:] != seqs_np[:-1]) + 1
    starts = np.concatenate(([0], changes))
    ends = np.concatenate((changes, [n]))
    arange = np.arange(int((ends - starts).max())) if n else None
    for a, b in zip(starts, ends, strict=False):
        plist = raw_positions_by_id(int(seqs_np[a]), eid)
        if not plist:
            continue
        positions = np.frombuffer(plist, dtype=np.int64)
        idx = positions.searchsorted(lasts_np[a:b], side="right")
        offsets = arange[: b - a]
        chosen = np.maximum.accumulate(idx - offsets) + offsets
        valid = chosen < len(positions)
        keep[a:b] = valid
        run_lasts = new_lasts[a:b]
        run_lasts[valid] = positions[chosen[valid]]
    firsts_np = np.frombuffer(firsts, dtype=np.int64)
    out_seqs = array(POSITION_TYPECODE)
    out_firsts = array(POSITION_TYPECODE)
    out_lasts = array(POSITION_TYPECODE)
    # Boolean fancy indexing always yields fresh contiguous arrays.
    out_seqs.frombytes(seqs_np[keep].tobytes())
    out_firsts.frombytes(firsts_np[keep].tobytes())
    out_lasts.frombytes(new_lasts[keep].tobytes())
    return out_seqs, out_firsts, out_lasts
