"""The asyncio pattern-serving transport (the default ``PatternServer``).

The daemon's brains live in :class:`repro.serve.core.ServeCore`; this
module is the event-loop shell around them, replacing the
thread-per-connection transport (:mod:`repro.serve.daemon`) as the facade
behind ``repro.serve.PatternServer`` while answering every request
identically — both transports run the same core.

What the event loop buys:

* **Connection scaling** — one loop multiplexes every connection, so a
  thousand mostly-idle workers cost file descriptors, not threads, and a
  slowloris writer trickling bytes occupies a read buffer, not a stack.
* **A unix-domain socket** (``uds=...``) next to TCP, for same-host
  workers that want to skip the loopback stack and key access off file
  permissions.
* **Micro-batching** — ``score`` / ``match`` requests that arrive within
  the batching window (``batch_window_ms``) are answered from **one**
  automaton sweep over their concatenated query sequences
  (:meth:`~repro.serve.core.ServeCore.process_batch`), amortising the
  per-sweep overhead across the batch.  Per-sequence supports are
  independent, so batched responses are byte-identical to unbatched ones.
* **The loop never blocks on mining code** — dispatch (and every batch
  sweep) runs on a thread pool; the loop only reads frames, writes
  responses, and serves response-cache hits (a dict lookup).

The division of labour per request: the loop thread runs
:meth:`~repro.serve.core.ServeCore.begin` (decode) and, for cacheable
operations, the cache fast path; everything that can take real time —
auto-reload checks, automaton sweeps, store swaps — runs on the pool via
:meth:`~repro.serve.core.ServeCore.dispatch` or
:meth:`~repro.serve.core.ServeCore.process_batch`.  Responses are written
back in arrival order per connection, exactly like the threaded transport.
"""

from __future__ import annotations

import asyncio
import socket
import threading
from collections.abc import Callable, Mapping
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any

from repro.core.constraints import GapConstraint
from repro.obs import MetricsRegistry
from repro.serve.core import RequestTicket, ServeCore
from repro.serve.protocol import MAX_LINE_BYTES, encode_line, error_response

PathLike = str | Path

__all__ = ["PatternServer", "serve"]

#: Default batching window: how long the first batchable request in a
#: batch waits for company, in milliseconds.  One millisecond is long
#: enough to merge a concurrent burst and short enough to be invisible
#: next to a sweep.
DEFAULT_BATCH_WINDOW_MS = 1.0


class PatternServer(ServeCore):
    """A scoring daemon over loaded pattern stores, served by an event loop.

    Accepts every :class:`~repro.serve.core.ServeCore` parameter plus the
    transport's own:

    host, port:
        The TCP listening address; ``port=0`` (default) picks an ephemeral
        port, read back from :attr:`address`.
    uds:
        Optional unix-domain socket path to listen on *in addition to*
        TCP.  A stale socket file from a dead daemon is replaced; the path
        is unlinked again on :meth:`close`.
    batch_window_ms:
        The micro-batching window for ``score`` / ``match`` requests: the
        first such request starts a timer this many milliseconds long, and
        every one that arrives before it fires joins the same automaton
        sweep.  ``0`` disables batching (each request sweeps alone).
    max_workers:
        Thread-pool size for dispatch; defaults to the executor's own
        CPU-derived default.

    The sockets are bound in the constructor — :attr:`address` is real
    before :meth:`start` — and the event loop runs on whichever thread
    calls :meth:`serve_forever` (or the daemon thread :meth:`start`
    spawns).  :meth:`~repro.serve.core.ServeCore.handle_raw` works without
    any loop at all, so embedded callers and tests can drive the core
    in-process.
    """

    def __init__(
        self,
        store_path: PathLike,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        uds: PathLike | None = None,
        batch_window_ms: float = DEFAULT_BATCH_WINDOW_MS,
        max_workers: int | None = None,
        stores: Mapping[str, PathLike] | None = None,
        constraint: GapConstraint | None = None,
        mmap: bool | str = "auto",
        auto_reload: bool = False,
        obs: MetricsRegistry | None = None,
        trace_out: PathLike | None = None,
        slow_ms: float | None = None,
        slow_sink: Callable[[str], None] | None = None,
        cache_size: int = 1024,
    ) -> None:
        super().__init__(
            store_path,
            stores=stores,
            constraint=constraint,
            mmap=mmap,
            auto_reload=auto_reload,
            obs=obs,
            trace_out=trace_out,
            slow_ms=slow_ms,
            slow_sink=slow_sink,
            cache_size=cache_size,
        )
        if batch_window_ms < 0:
            raise ValueError(f"batch_window_ms must be >= 0, got {batch_window_ms}")
        self._batch_window = batch_window_ms / 1000.0
        self._max_workers = max_workers
        # Sockets are bound eagerly so `address` answers before the loop
        # exists and bind errors surface at construction, where the caller
        # can still handle them.
        self._tcp_socket = socket.create_server((host, port))
        self._uds_path: Path | None = None
        self._uds_socket: socket.socket | None = None
        if uds is not None:
            path = Path(uds)
            if path.exists():
                # A stale socket file from a dead daemon would make bind()
                # fail; anything else at the path is somebody's data.
                if not path.is_socket():
                    self._tcp_socket.close()
                    raise OSError(f"refusing to replace non-socket path {path}")
                path.unlink()
            uds_socket = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                uds_socket.bind(str(path))
                uds_socket.listen()
            except OSError:
                uds_socket.close()
                self._tcp_socket.close()
                raise
            self._uds_path = path
            self._uds_socket = uds_socket
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._stop_requested = False
        self._startup_error: BaseException | None = None
        self._pending: list[
            tuple[RequestTicket, asyncio.Future[tuple[bytes, bool]]]
        ] = []
        self._flush_handle: asyncio.TimerHandle | None = None

    # ------------------------------------------------------------------
    # Server lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound TCP ``(host, port)`` — real even when 0 was asked."""
        host, port = self._tcp_socket.getsockname()[:2]
        return host, port

    @property
    def uds_path(self) -> Path | None:
        """The bound unix-domain socket path, or ``None`` when TCP-only."""
        return self._uds_path

    def serve_forever(self) -> None:
        """Run the event loop on the calling thread until :meth:`shutdown`."""
        asyncio.run(self._serve_main())

    def start(self) -> threading.Thread:
        """Serve on a daemon background thread; returns the thread.

        Blocks until the loop is accepting (or startup failed, which
        re-raises here rather than dying silently on the thread).
        """
        thread = threading.Thread(
            target=self._run_loop, name="repro-serve-aio", daemon=True
        )
        self._thread = thread
        thread.start()
        self._ready.wait()
        if self._startup_error is not None:
            raise self._startup_error
        return thread

    def _run_loop(self) -> None:
        """The background thread's body: the event loop, startup errors kept."""
        try:
            asyncio.run(self._serve_main())
        except BaseException as exc:  # noqa: BLE001 - surfaced by start()
            self._startup_error = exc
        finally:
            self._ready.set()

    def shutdown(self) -> None:
        """Stop the serving loop (safe to call from any thread, or twice)."""
        self._stop_requested = True
        loop = self._loop
        stop_event = self._stop_event
        if loop is None or stop_event is None:
            return
        try:
            loop.call_soon_threadsafe(stop_event.set)
        except RuntimeError:
            # The loop already exited; nothing left to stop.
            pass

    def close(self) -> None:
        """Stop serving, join the loop thread, and release every socket.

        The store is *not* force-closed here: pool workers may still be
        finishing in-flight requests on it, so the mapping is left to
        close when the last reference drops — exactly how superseded
        stores retire on :meth:`~repro.serve.core.ServeCore.reload`.
        """
        self.shutdown()
        thread = self._thread
        if thread is not None and thread is not threading.current_thread():
            thread.join(timeout=10.0)
        # asyncio closed these when the loop exited; closing twice is a
        # no-op, and closing here covers the never-started case.
        self._tcp_socket.close()
        if self._uds_socket is not None:
            self._uds_socket.close()
        if self._uds_path is not None:
            try:
                self._uds_path.unlink()
            except OSError:
                pass
        self._close_core()

    def __enter__(self) -> PatternServer:
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # The event loop
    # ------------------------------------------------------------------
    async def _serve_main(self) -> None:
        """The loop's whole life: listen, serve until stopped, drain, exit."""
        loop = asyncio.get_running_loop()
        self._loop = loop
        self._stop_event = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=self._max_workers, thread_name_prefix="repro-serve-worker"
        )
        connections: set[asyncio.Task[None]] = set()

        async def on_connection(
            reader: asyncio.StreamReader, writer: asyncio.StreamWriter
        ) -> None:
            """Track the connection task so shutdown can cancel stragglers."""
            task = asyncio.current_task()
            if task is not None:
                connections.add(task)
                task.add_done_callback(connections.discard)
            await self._serve_connection(reader, writer)

        tcp_server = await asyncio.start_server(
            on_connection, sock=self._tcp_socket, limit=MAX_LINE_BYTES + 2
        )
        uds_server: asyncio.AbstractServer | None = None
        if self._uds_socket is not None:
            uds_server = await asyncio.start_unix_server(
                on_connection, sock=self._uds_socket, limit=MAX_LINE_BYTES + 2
            )
        self._ready.set()
        if self._stop_requested:
            self._stop_event.set()
        try:
            await self._stop_event.wait()
        finally:
            tcp_server.close()
            if uds_server is not None:
                uds_server.close()
            await tcp_server.wait_closed()
            if uds_server is not None:
                await uds_server.wait_closed()
            self._flush_batch()
            for task in list(connections):
                task.cancel()
            if connections:
                await asyncio.gather(*connections, return_exceptions=True)
            self._executor.shutdown(wait=True)
            self._loop = None

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One connection's request/response loop until EOF or shutdown.

        Responses go back in request order per connection (the loop awaits
        each response before reading the next frame), matching the
        threaded transport.  Transport faults — a peer gone mid-write, a
        frame longer than ``MAX_LINE_BYTES`` — end this connection and
        nothing else.
        """
        stop_event = self._stop_event
        assert stop_event is not None
        try:
            while True:
                # MAX_LINE_BYTES is read at call time so tests can shrink
                # it; the stream's own limit (set at listen time) backstops.
                max_line = MAX_LINE_BYTES
                try:
                    raw = await reader.readline()
                except ValueError:
                    # The stream limit tripped: an over-long frame.
                    writer.write(
                        encode_line(
                            error_response(
                                f"request line exceeds {max_line} bytes"
                            )
                        )
                    )
                    await writer.drain()
                    break
                if not raw:
                    break
                if len(raw) > max_line:
                    writer.write(
                        encode_line(
                            error_response(
                                f"request line exceeds {max_line} bytes"
                            )
                        )
                    )
                    await writer.drain()
                    break
                raw = raw.strip()
                if not raw:
                    continue
                response, stop = await self._handle_line(raw)
                writer.write(response)
                await writer.drain()
                if stop:
                    stop_event.set()
                    break
        except (ConnectionResetError, BrokenPipeError, TimeoutError):
            # The peer vanished mid-conversation; their loss, not ours.
            pass
        except asyncio.CancelledError:
            # Shutdown cancelled this connection mid-read.  Finish normally:
            # asyncio's stream plumbing calls ``task.exception()`` on the
            # connection task when it ends, and a propagated cancellation
            # would be re-raised there and logged as a loop error.  The
            # ``finally`` below still closes the transport.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError, asyncio.CancelledError):
                pass

    async def _handle_line(self, raw: bytes) -> tuple[bytes, bool]:
        """Route one frame: cache fast path, batch queue, or pool dispatch."""
        loop = self._loop
        executor = self._executor
        assert loop is not None and executor is not None
        ticket = self.begin(raw)
        cached = self.try_cached(ticket)
        if cached is not None:
            return self.finish(ticket, cached), ticket.stop
        if ticket.batchable and self._batch_window > 0:
            future: asyncio.Future[tuple[bytes, bool]] = loop.create_future()
            self._pending.append((ticket, future))
            if self._flush_handle is None:
                self._flush_handle = loop.call_later(
                    self._batch_window, self._flush_batch
                )
            return await future
        return await loop.run_in_executor(executor, self._handle_ticket, ticket)

    def _handle_ticket(self, ticket: RequestTicket) -> tuple[bytes, bool]:
        """Pool-side single dispatch: the core's dispatch + finish."""
        response = self.dispatch(ticket)
        return self.finish(ticket, response), ticket.stop

    def _flush_batch(self) -> None:
        """Hand the accumulated batch to the pool; runs on the loop thread."""
        self._flush_handle = None
        pending = self._pending
        if not pending:
            return
        self._pending = []
        loop = self._loop
        executor = self._executor
        if loop is None or executor is None or not loop.is_running():
            return
        tickets = [ticket for ticket, _ in pending]
        batch_future = loop.run_in_executor(executor, self.process_batch, tickets)

        def deliver(done: asyncio.Future[list[tuple[bytes, bool]]]) -> None:
            """Fan the batch's results (or its failure) out to the waiters."""
            try:
                results = done.result()
            except BaseException as exc:  # noqa: BLE001 - fail the waiters, not the loop
                for _, waiter in pending:
                    if not waiter.done():
                        waiter.set_exception(exc)
                return
            for (_, waiter), result in zip(pending, results):
                if not waiter.done():
                    waiter.set_result(result)

        batch_future.add_done_callback(deliver)


def serve(
    store_path: PathLike,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    uds: PathLike | None = None,
    stores: Mapping[str, PathLike] | None = None,
    batch_window_ms: float = DEFAULT_BATCH_WINDOW_MS,
    cache_size: int = 1024,
    constraint: GapConstraint | None = None,
    mmap: bool | str = "auto",
    auto_reload: bool = False,
    obs: MetricsRegistry | None = None,
    trace_out: PathLike | None = None,
    slow_ms: float | None = None,
    block: bool = True,
) -> PatternServer:
    """Start a pattern-serving daemon over saved stores.

    ``block=True`` (default) serves on the calling thread until
    :meth:`PatternServer.shutdown` (or a ``shutdown`` request) stops it,
    then closes the sockets and returns.  ``block=False`` starts a daemon
    background thread and returns the running :class:`PatternServer`
    immediately — read :attr:`PatternServer.address` for the bound port
    (and :attr:`PatternServer.uds_path` for the socket path, if any).
    """
    server = PatternServer(
        store_path,
        host=host,
        port=port,
        uds=uds,
        stores=stores,
        batch_window_ms=batch_window_ms,
        cache_size=cache_size,
        constraint=constraint,
        mmap=mmap,
        auto_reload=auto_reload,
        obs=obs,
        trace_out=trace_out,
        slow_ms=slow_ms,
    )
    if not block:
        server.start()
        return server
    try:
        server.serve_forever()
    finally:
        server.close()
    return server

