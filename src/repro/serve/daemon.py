"""The long-running pattern-serving daemon.

Mining produces a pattern store; matching wants that store resident,
compiled and queryable for hours.  :class:`PatternServer` is the process
that holds it: a stdlib :mod:`socketserver` TCP loop that loads a store
once (zero-copy over a shared mapping where the platform allows), compiles
the shared :class:`~repro.match.automaton.PatternAutomaton` once, and then
answers ``match`` / ``score`` / ``rank`` / ``top_k`` requests over the
newline-delimited JSON protocol of :mod:`repro.serve.protocol`.

Republication is first-class: a ``reload`` request (or ``auto_reload=True``,
which stats the file before every request) swaps in a republished store —
the :class:`~repro.stream.miner.StreamMiner` ``store_path=...`` bridge
rewrites the file after every refresh.  The swap is graceful (in-flight
requests finish on the old store; a lock orders the exchange) and cheap:
when the republish changed only supports, the new store adopts the old
store's compiled automaton (:meth:`PatternStore.adopt_automaton`) instead
of recompiling, and a supports-only in-place patch
(:meth:`PatternStore.patch_file_supports`) is visible through an existing
zero-copy mapping without any reload at all.

Each request is handled on its own thread (``ThreadingTCPServer``), so a
slow scoring call never blocks a liveness ping.  Nothing here imports the
client; the daemon is usable from any language that frames JSON by lines.
"""

from __future__ import annotations

import itertools
import os
import socketserver
import sys
import threading
from collections.abc import Callable
from pathlib import Path
from typing import Any, cast

from repro.core.constraints import GapConstraint
from repro.db.database import SequenceDatabase
from repro.db.sequence import as_sequence
from repro.match.service import PatternMatcher
from repro.match.store import PatternStore, load_patterns
from repro.obs import (
    Counter,
    Histogram,
    MetricsRegistry,
    SpanJournalWriter,
    SpanRecord,
    TraceContext,
    child_of,
    reset_context,
    set_context,
)
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    OPERATIONS,
    ProtocolError,
    decode_line,
    encode_line,
    error_response,
    match_result_to_wire,
    ok_response,
    ranked_to_wire,
    score_to_wire,
    top_patterns_to_wire,
)

PathLike = str | Path


class _ServingState:
    """One loaded store with its compiled matcher and the file identity it came from.

    ``identity`` is ``(st_ino, st_mtime_ns, st_size)``: atomic republishes
    (:meth:`PatternStore.save`) always create a new inode, so the inode
    catches same-size republishes even on filesystems with coarse
    timestamps, while mtime/size catch in-place supports patches.

    ``ticket`` is the server's monotonic load counter, drawn when the load
    *started*.  The file only ever moves forward, so a later-started load
    observed bytes at least as fresh as any earlier one — tickets order
    racing reloads without trusting wall-clock timestamps.
    """

    __slots__ = ("store", "matcher", "identity", "ticket")

    def __init__(
        self,
        store: PatternStore,
        matcher: PatternMatcher,
        stat: os.stat_result,
        ticket: int,
    ) -> None:
        self.store = store
        self.matcher = matcher
        self.identity = (stat.st_ino, stat.st_mtime_ns, stat.st_size)
        self.ticket = ticket


class _ServeTCPServer(socketserver.ThreadingTCPServer):
    """The socket loop; one handler thread per connection, no lingering threads."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: tuple[str, int], owner: PatternServer) -> None:
        super().__init__(address, _RequestHandler)
        self.owner = owner


class _RequestHandler(socketserver.StreamRequestHandler):
    """Reads newline-framed requests and writes one response line per request."""

    def handle(self) -> None:
        """Serve one connection: a request/response loop until EOF or shutdown.

        Lines are read with a hard byte cap (``MAX_LINE_BYTES``) so one
        connection streaming an endless newline-free body cannot grow the
        daemon's memory without bound; an over-long line gets an error
        response and the connection closes.
        """
        owner = cast(_ServeTCPServer, self.server).owner
        while True:
            raw = self.rfile.readline(MAX_LINE_BYTES + 1)
            if not raw:
                break
            if len(raw) > MAX_LINE_BYTES:
                self.wfile.write(
                    encode_line(
                        error_response(
                            f"request line exceeds {MAX_LINE_BYTES} bytes"
                        )
                    )
                )
                self.wfile.flush()
                break
            raw = raw.strip()
            if not raw:
                continue
            response, stop = owner.handle_raw(raw)
            self.wfile.write(response)
            self.wfile.flush()
            if stop:
                # shutdown() blocks until serve_forever exits, and this
                # handler runs inside it — hand the stop to a helper thread.
                threading.Thread(target=owner.shutdown, daemon=True).start()
                break


def _query_database(params: dict[str, Any]) -> SequenceDatabase:
    """Coerce a request's ``sequences`` parameter into a query database.

    Accepts a single string (one sequence of single-character events) or a
    list of sequences, each a string or a list of str/int events — the JSON
    shapes of what :func:`~repro.db.sequence.as_sequence` accepts.
    """
    sequences = params.get("sequences")
    if sequences is None:
        raise ProtocolError("missing required parameter 'sequences'")
    if isinstance(sequences, str):
        sequences = [sequences]
    if not isinstance(sequences, list) or not sequences:
        raise ProtocolError("'sequences' must be a non-empty list (or one string)")
    return SequenceDatabase([as_sequence(seq) for seq in sequences])


class PatternServer:
    """A scoring daemon over a loaded pattern store.

    Parameters
    ----------
    store_path:
        A pattern-store file (binary or JSON, sniffed).  Loaded once at
        construction — zero-copy over a shared read-only mapping for binary
        stores when ``mmap`` allows — and compiled into the shared automaton
        before the first request.
    host, port:
        The listening address; ``port=0`` (default) picks an ephemeral port,
        read back from :attr:`address`.
    constraint:
        Optional gap constraint applied to every match (the mined
        constraint, if mining used one).
    mmap:
        Store read path: ``"auto"`` (default) / ``True`` / ``False``, with
        the semantics of :meth:`repro.match.store.PatternStore.open`.
    auto_reload:
        ``True`` re-stats the store file before every request and reloads
        when it changed, so the daemon always serves the latest republish
        without anyone asking; ``False`` (default) reloads only on the
        explicit ``reload`` operation.
    obs:
        Optional :class:`~repro.obs.MetricsRegistry` to record into:
        per-operation request counts (``serve.op.<op>.requests``) and
        latency histograms (``serve.op.<op>.seconds``), bytes in/out,
        reload/adoption counters and durations.  The ``stats`` operation
        returns this registry's snapshot.  Defaults to a private enabled
        registry.  When the registry carries an enabled
        :class:`~repro.obs.TraceRecorder`, every request additionally
        records an operation span — parented under the request's optional
        ``trace`` wire context and echoed back on the response — and the
        ``trace`` operation serves the recorder's ring.
    trace_out:
        Optional path of a JSON-lines span journal
        (:class:`~repro.obs.SpanJournalWriter`, append mode).  After each
        request the daemon drains newly completed spans from the recorder
        into it, so the journal is the replayable record of every traced
        request.  Requires a registry with a recorder to have any effect.
    slow_ms:
        When set, any request slower than this many milliseconds emits one
        ``# slow op=<op> ms=<elapsed> trace=<trace_id>`` line through
        ``slow_sink`` — the grep-able hook for tail-latency triage, with
        the trace id linking straight to the span journal.
    slow_sink:
        Where slow-request lines go; defaults to stderr.
    """

    def __init__(
        self,
        store_path: PathLike,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        constraint: GapConstraint | None = None,
        mmap: bool | str = "auto",
        auto_reload: bool = False,
        obs: MetricsRegistry | None = None,
        trace_out: PathLike | None = None,
        slow_ms: float | None = None,
        slow_sink: Callable[[str], None] | None = None,
    ) -> None:
        self.store_path = Path(store_path)
        self._constraint = constraint
        self._mmap = mmap
        self._auto_reload = auto_reload
        self._lock = threading.Lock()
        self._serving = False
        self.reloads = 0
        self.automaton_reuses = 0
        self.requests_served = 0
        self.last_reload_error: str | None = None
        self.last_reload_seconds: float | None = None
        self.obs = obs if obs is not None else MetricsRegistry()
        self._started = self.obs.clock()
        # Instruments are pre-bound once (null instruments on a disabled
        # registry), so the request path never pays a per-request registry
        # dict lookup — the RL006 discipline, applied to the daemon.
        self._op_metrics: dict[str, tuple[Counter, Histogram]] = {
            name: (
                self.obs.counter(f"serve.op.{name}.requests"),  # reprolint: disable=RL008 -- the per-op family is enumerated from the closed OPERATIONS tuple, not free-form
                self.obs.histogram(f"serve.op.{name}.seconds"),  # reprolint: disable=RL008 -- same closed enumeration; each expansion is a conformant dotted name
            )
            for name in (*OPERATIONS, "invalid")
        }
        # Op span names are the op histogram names — one vocabulary for the
        # latency table and the trace tree.
        self._op_span_names: dict[str, str] = {
            name: histogram.name for name, (_, histogram) in self._op_metrics.items()
        }
        self._trace_lock = threading.Lock()
        self._trace_cursor = 0
        self._trace_writer = (
            SpanJournalWriter(trace_out) if trace_out is not None else None
        )
        self._slow_ms = slow_ms
        self._slow_sink: Callable[[str], None] = (
            slow_sink
            if slow_sink is not None
            else lambda line: print(line, file=sys.stderr)
        )
        self._requests_total = self.obs.counter("serve.requests")
        self._errors_total = self.obs.counter("serve.errors")
        self._bytes_in = self.obs.counter("serve.bytes_in")
        self._bytes_out = self.obs.counter("serve.bytes_out")
        self._load_tickets = itertools.count()
        self._state, _ = self._load_state(adopt_from=None)
        self._tcp = _ServeTCPServer((host, port), self)

    # ------------------------------------------------------------------
    # Store lifecycle
    # ------------------------------------------------------------------
    def _load_state(
        self, adopt_from: PatternStore | None
    ) -> tuple[_ServingState, bool]:
        """Load the store file and compile (or adopt) its automaton.

        Returns ``(state, adopted)`` where ``adopted`` says whether the new
        store reused ``adopt_from``'s compiled automaton.  The load ticket
        is drawn *before* the file is read, so ticket order bounds bytes
        freshness (see :class:`_ServingState`).
        """
        ticket = next(self._load_tickets)
        stat = os.stat(self.store_path)
        store = load_patterns(self.store_path, mmap=self._mmap)
        adopted = adopt_from is not None and store.adopt_automaton(adopt_from)
        matcher = PatternMatcher(store, constraint=self._constraint, obs=self.obs)
        return _ServingState(store, matcher, stat, ticket), adopted

    @property
    def store(self) -> PatternStore:
        """The currently served store."""
        return self._state.store

    def reload(self, force: bool = False) -> dict[str, Any]:
        """Swap in the store file if it was republished (or ``force`` is set).

        Returns a summary dict: ``reloaded`` (whether a swap happened),
        ``automaton_reused`` (whether the new store adopted the old compiled
        automaton — the supports-only republish fast path) and ``patterns``.
        In-flight requests keep the state they started with; new requests
        see the fresh store.

        The unchanged-file fast path is lock-free (one ``stat`` + tuple
        compare) and the expensive part of an actual reload — file load and
        automaton compile — runs outside the lock too, so a republish never
        stalls concurrent requests; only the state swap itself is mutual.
        Racing reloads both do the work, but the swap keeps whichever load
        *started* later (:meth:`_swap_state` compares monotonic load
        tickets — the file only moves forward, so a later-started load read
        bytes at least as fresh), so a slow loader finishing late can never
        reinstall a superseded store, and no wall-clock comparison is
        involved.
        """
        stat = os.stat(self.store_path)
        current = self._state
        if (
            not force
            and (stat.st_ino, stat.st_mtime_ns, stat.st_size) == current.identity
        ):
            return {
                "reloaded": False,
                "automaton_reused": False,
                "patterns": len(current.store),
            }
        started = self.obs.clock()
        state, adopted = self._load_state(adopt_from=current.store)
        swapped = self._swap_state(state, adopted)
        elapsed = self.obs.clock() - started
        if self.obs.enabled:
            with self.obs.locked():
                self.obs.histogram("serve.reload.seconds").observe(elapsed)
                if swapped:
                    self.obs.counter("serve.reloads").inc()
                    if adopted:
                        self.obs.counter("serve.automaton_adoptions").inc()
        with self._lock:
            self.last_reload_seconds = elapsed
        served = self._state
        return {
            "reloaded": swapped,
            "automaton_reused": swapped and adopted,
            "patterns": len(served.store),
        }

    def _swap_state(self, state: _ServingState, adopted: bool) -> bool:
        """Install ``state`` unless the served state came from a later-started load.

        Load tickets are drawn before the file is read and the file only
        ever moves forward, so a later ticket means at-least-as-fresh
        bytes — an ordering immune to clock steps and coarse filesystem
        timestamps.  Returns whether the swap happened.
        """
        with self._lock:
            if state.ticket < self._state.ticket:
                return False
            self._state = state
            self.reloads += 1
            if adopted:
                self.automaton_reuses += 1
            return True

    def _maybe_auto_reload(self) -> None:
        """Pick up a republished store before handling a request (opt-in).

        A failed automatic reload — a mid-republish gap, a truncated or
        unreadable file, an unknown format version — must never poison the
        request being handled (or shutdown): the daemon keeps serving its
        loaded state and remembers the failure, which ``ping`` surfaces as
        ``last_reload_error``.  An explicit ``reload`` request still
        reports its failure to the caller.
        """
        if not self._auto_reload:
            return
        try:
            self.reload()
        except Exception as exc:  # noqa: BLE001 - keep serving the loaded state
            message: str | None = f"{type(exc).__name__}: {exc}"
            self.obs.counter("serve.auto_reload_failures").inc()
        else:
            message = None
        # The assignment happens under the (non-reentrant) lock, but only
        # after reload() — and the _swap_state it runs — has released it.
        with self._lock:
            self.last_reload_error = message

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    def handle_raw(self, raw: bytes) -> tuple[bytes, bool]:
        """Handle one request line; returns ``(response line, stop?)``.

        Never raises: protocol violations and handler errors come back as
        ``{"ok": false, "error": ...}`` responses so one bad request cannot
        take the daemon down.

        Every request — including malformed ones, filed under the
        ``invalid`` pseudo-operation — is counted and timed into the
        registry *after* its response is encoded, under one registry lock
        acquisition, so in every snapshot the per-op histogram count equals
        the per-op request counter (a ``stats`` response therefore never
        counts the request that carried it).

        With tracing on (an enabled recorder on the registry), the whole
        handling becomes the request's *operation span*: parented under
        the request's optional ``trace`` wire context, ambient while the
        operation runs (so matcher spans nest beneath it), echoed on the
        response as ``trace``, and recorded after the response is encoded
        — which is also when the span journal drains and the slow-request
        line (if configured) is emitted.
        """
        obs = self.obs
        recorder = obs.recorder
        tracing = obs.enabled and recorder is not None and recorder.enabled
        started = obs.clock() if obs.enabled else 0.0
        stop = False
        request_id = None
        op_name = "invalid"
        parent: TraceContext | None = None
        context: TraceContext | None = None
        token = None
        try:
            request = decode_line(raw)
            request_id = request.get("id")
            op = request.get("op")
            if op == "top-k":
                op = "top_k"
            if isinstance(op, str) and op in self._op_metrics:
                op_name = op
            if tracing:
                parent = TraceContext.from_wire(request.get("trace"))
                context = child_of(parent)
                token = set_context(context)
            self._maybe_auto_reload()
            response = self._dispatch(op, request)
            stop = op == "shutdown"
        except ProtocolError as exc:
            response = error_response(str(exc))
        except Exception as exc:  # noqa: BLE001 - the daemon must keep serving
            response = error_response(f"{type(exc).__name__}: {exc}")
        finally:
            if token is not None:
                reset_context(token)
        if request_id is not None:
            response.setdefault("id", request_id)
        if context is not None:
            response["trace"] = context.to_wire()
        encoded = encode_line(response)
        if obs.enabled:
            elapsed = obs.clock() - started
            op_requests, op_seconds = self._op_metrics[op_name]
            with obs.locked():
                self._requests_total.inc()
                op_requests.inc()
                op_seconds.observe(elapsed)
                self._bytes_in.inc(len(raw))
                self._bytes_out.inc(len(encoded))
                if not response.get("ok"):
                    self._errors_total.inc()
            if context is not None and recorder is not None:
                recorder.record(
                    SpanRecord(
                        trace_id=context.trace_id,
                        span_id=context.span_id,
                        parent_id=None if parent is None else parent.span_id,
                        name=self._op_span_names[op_name],
                        start=started,
                        duration=elapsed,
                        attributes={"op": op_name},
                    )
                )
                self._drain_trace()
            if self._slow_ms is not None and elapsed * 1000.0 >= self._slow_ms:
                trace_id = context.trace_id if context is not None else "-"
                self._slow_sink(
                    f"# slow op={op_name} ms={elapsed * 1000.0:.1f} trace={trace_id}"
                )
        with self._lock:
            self.requests_served += 1
        return encoded, stop

    def _drain_trace(self) -> None:
        """Append spans recorded since the last drain to the span journal.

        Incremental via the recorder's sequence cursor; the cursor update
        and the append happen under the writer-side lock, so concurrent
        request threads never write a span twice or out of order.
        """
        writer = self._trace_writer
        recorder = self.obs.recorder
        if writer is None or recorder is None:
            return
        with self._trace_lock:
            spans, self._trace_cursor = recorder.since(self._trace_cursor)
            if spans:
                writer.write(spans)

    def _dispatch(self, op: Any, request: dict[str, Any]) -> dict[str, Any]:
        """Route one decoded request to its (already normalised) operation."""
        state = self._state
        if op == "ping":
            return ok_response(
                patterns=len(state.store),
                algorithm=state.store.algorithm,
                min_sup=state.store.min_sup,
                store_path=str(self.store_path),
                zero_copy=state.store.is_zero_copy,
                reloads=self.reloads,
                automaton_reuses=self.automaton_reuses,
                last_reload_error=self.last_reload_error,
                last_reload_seconds=self.last_reload_seconds,
                uptime_ticks=self.obs.clock() - self._started,
                requests_served=self.requests_served,
                pid=os.getpid(),
            )
        if op == "match":
            result = state.matcher.match(_query_database(request))
            return ok_response(**match_result_to_wire(result))
        if op == "score":
            scores = state.matcher.score_many(list(_query_database(request)))
            return ok_response(scores=[score_to_wire(s) for s in scores])
        if op == "rank":
            ranked = state.matcher.rank_sequences(
                list(_query_database(request)),
                request.get("k"),
                by=request.get("by", "anomaly"),
            )
            return ok_response(ranked=ranked_to_wire(ranked))
        if op == "top_k":
            top = state.matcher.top_patterns(
                _query_database(request),
                request.get("k", 10),
                by=request.get("by", "support"),
            )
            return ok_response(patterns=top_patterns_to_wire(top))
        if op == "reload":
            return ok_response(**self.reload(force=bool(request.get("force"))))
        if op == "stats":
            return ok_response(stats=self.obs.snapshot())
        if op == "trace":
            recorder = self.obs.recorder
            if recorder is None:
                return ok_response(spans=[], dropped=0, total=0, enabled=False)
            limit = request.get("limit")
            spans = recorder.spans(None if limit is None else int(limit))
            return ok_response(
                spans=[span.to_wire() for span in spans],
                dropped=recorder.dropped,
                total=recorder.total,
                enabled=recorder.enabled,
            )
        if op == "shutdown":
            return ok_response(stopping=True)
        raise ProtocolError(
            f"unknown operation {op!r} (expected one of: {', '.join(OPERATIONS)})"
        )

    # ------------------------------------------------------------------
    # Server lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — the port is real even when 0 was asked."""
        host, port = self._tcp.server_address[:2]
        return host, port

    def serve_forever(self) -> None:
        """Serve requests on the calling thread until :meth:`shutdown`."""
        self._serving = True
        self._tcp.serve_forever()

    def start(self) -> threading.Thread:
        """Serve on a daemon background thread; returns the thread."""
        self._serving = True
        thread = threading.Thread(
            target=self._tcp.serve_forever, name="repro-serve", daemon=True
        )
        thread.start()
        return thread

    def shutdown(self) -> None:
        """Stop the serving loop (safe to call from any thread, or twice)."""
        if self._serving:
            self._serving = False
            self._tcp.shutdown()

    def close(self) -> None:
        """Stop serving and release the listening socket.

        The store is *not* force-closed here: handler threads may still be
        finishing in-flight requests on it (``shutdown`` only stops the
        accept loop), so the mapping is left to close when the last
        reference drops — exactly how superseded stores retire on
        :meth:`reload`.
        """
        self.shutdown()
        self._tcp.server_close()
        if self._trace_writer is not None:
            self._drain_trace()
            self._trace_writer.close()

    def __enter__(self) -> PatternServer:
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def serve(
    store_path: PathLike,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    constraint: GapConstraint | None = None,
    mmap: bool | str = "auto",
    auto_reload: bool = False,
    obs: MetricsRegistry | None = None,
    trace_out: PathLike | None = None,
    slow_ms: float | None = None,
    block: bool = True,
) -> PatternServer:
    """Start a pattern-serving daemon over a saved store.

    ``block=True`` (default) serves on the calling thread until
    :meth:`PatternServer.shutdown` (or a ``shutdown`` request) stops it,
    then closes the socket and returns.  ``block=False`` starts a daemon
    background thread and returns the running :class:`PatternServer`
    immediately — read :attr:`PatternServer.address` for the bound port.
    """
    server = PatternServer(
        store_path,
        host=host,
        port=port,
        constraint=constraint,
        mmap=mmap,
        auto_reload=auto_reload,
        obs=obs,
        trace_out=trace_out,
        slow_ms=slow_ms,
    )
    if not block:
        server.start()
        return server
    try:
        server.serve_forever()
    finally:
        server.close()
    return server
