"""The threaded (one-thread-per-connection) pattern-serving transport.

The daemon's brains — store lifecycle, namespaces, the response cache,
request dispatch and telemetry — live in :class:`repro.serve.core.ServeCore`;
this module is the original stdlib :mod:`socketserver` TCP shell around
them: a ``ThreadingTCPServer`` accept loop that reads newline-framed JSON
requests and answers each on its own handler thread.

:class:`ThreadedPatternServer` predates the asyncio transport
(:class:`repro.serve.aio.PatternServer`, the default facade) and stays for
two jobs: it is the equivalence baseline the asyncio daemon is pinned
against (both transports run the identical core, so their wire behaviour
can only differ if a transport leaks), and it remains a fine embedded
server for callers that want a thread model with no event loop in the
process.
"""

from __future__ import annotations

import socketserver
import threading
from typing import cast

from collections.abc import Callable, Mapping
from pathlib import Path

from repro.core.constraints import GapConstraint
from repro.obs import MetricsRegistry
from repro.serve.core import ServeCore
from repro.serve.protocol import MAX_LINE_BYTES, encode_line, error_response

PathLike = str | Path

__all__ = ["ThreadedPatternServer"]


class _ServeTCPServer(socketserver.ThreadingTCPServer):
    """The socket loop; one handler thread per connection, no lingering threads."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self, address: tuple[str, int], owner: ThreadedPatternServer
    ) -> None:
        super().__init__(address, _RequestHandler)
        self.owner = owner


class _RequestHandler(socketserver.StreamRequestHandler):
    """Reads newline-framed requests and writes one response line per request."""

    def handle(self) -> None:
        """Serve one connection: a request/response loop until EOF or shutdown.

        Lines are read with a hard byte cap (``MAX_LINE_BYTES``) so one
        connection streaming an endless newline-free body cannot grow the
        daemon's memory without bound; an over-long line gets an error
        response and the connection closes.
        """
        owner = cast(_ServeTCPServer, self.server).owner
        while True:
            raw = self.rfile.readline(MAX_LINE_BYTES + 1)
            if not raw:
                break
            if len(raw) > MAX_LINE_BYTES:
                self.wfile.write(
                    encode_line(
                        error_response(
                            f"request line exceeds {MAX_LINE_BYTES} bytes"
                        )
                    )
                )
                self.wfile.flush()
                break
            raw = raw.strip()
            if not raw:
                continue
            response, stop = owner.handle_raw(raw)
            self.wfile.write(response)
            self.wfile.flush()
            if stop:
                # shutdown() blocks until serve_forever exits, and this
                # handler runs inside it — hand the stop to a helper thread.
                threading.Thread(target=owner.shutdown, daemon=True).start()
                break


class ThreadedPatternServer(ServeCore):
    """A scoring daemon over loaded pattern stores, one thread per connection.

    Accepts every :class:`~repro.serve.core.ServeCore` parameter plus the
    listening address:

    host, port:
        The listening address; ``port=0`` (default) picks an ephemeral
        port, read back from :attr:`address`.

    See :class:`repro.serve.aio.PatternServer` for the asyncio transport
    with the same core (plus unix-domain sockets and request batching);
    the two answer every request identically.
    """

    def __init__(
        self,
        store_path: PathLike,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        stores: Mapping[str, PathLike] | None = None,
        constraint: GapConstraint | None = None,
        mmap: bool | str = "auto",
        auto_reload: bool = False,
        obs: MetricsRegistry | None = None,
        trace_out: PathLike | None = None,
        slow_ms: float | None = None,
        slow_sink: Callable[[str], None] | None = None,
        cache_size: int = 1024,
    ) -> None:
        super().__init__(
            store_path,
            stores=stores,
            constraint=constraint,
            mmap=mmap,
            auto_reload=auto_reload,
            obs=obs,
            trace_out=trace_out,
            slow_ms=slow_ms,
            slow_sink=slow_sink,
            cache_size=cache_size,
        )
        self._serving = False
        self._tcp = _ServeTCPServer((host, port), self)

    # ------------------------------------------------------------------
    # Server lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — the port is real even when 0 was asked."""
        host, port = self._tcp.server_address[:2]
        return host, port

    def serve_forever(self) -> None:
        """Serve requests on the calling thread until :meth:`shutdown`."""
        self._serving = True
        self._tcp.serve_forever()

    def start(self) -> threading.Thread:
        """Serve on a daemon background thread; returns the thread."""
        self._serving = True
        thread = threading.Thread(
            target=self._tcp.serve_forever, name="repro-serve", daemon=True
        )
        thread.start()
        return thread

    def shutdown(self) -> None:
        """Stop the serving loop (safe to call from any thread, or twice)."""
        if self._serving:
            self._serving = False
            self._tcp.shutdown()

    def close(self) -> None:
        """Stop serving and release the listening socket.

        The store is *not* force-closed here: handler threads may still be
        finishing in-flight requests on it (``shutdown`` only stops the
        accept loop), so the mapping is left to close when the last
        reference drops — exactly how superseded stores retire on
        :meth:`reload`.
        """
        self.shutdown()
        self._tcp.server_close()
        self._close_core()

    def __enter__(self) -> ThreadedPatternServer:
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
