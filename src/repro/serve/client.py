"""Client helper for the pattern-serving daemon.

:class:`ServeClient` speaks the newline-delimited JSON protocol of
:mod:`repro.serve.protocol` over one persistent TCP connection: each method
sends one request line and blocks for its response line.  Error responses
(``{"ok": false}``) raise :class:`ServeError` with the daemon's message, so
callers handle failures as exceptions instead of inspecting dicts.

Usage::

    from repro.serve import ServeClient

    with ServeClient("127.0.0.1", 7007) as client:
        client.ping()["patterns"]
        client.score(["ABCD", "AXY"])        # coverage/anomaly per sequence
        client.top_k(["ABCDABCD"], k=5)      # dominant patterns of a trace
        client.reload()                      # pick up a republished store

The wire format is plain enough that this class is a convenience, not a
requirement — ``printf '{"op":"ping"}\\n' | nc host port`` works too.
"""

from __future__ import annotations

import socket
from typing import Any, cast

from repro.obs import MetricsRegistry, current_context
from repro.serve.protocol import PingInfo, decode_line, encode_line


class ServeError(RuntimeError):
    """An error response from the serving daemon, or a broken connection."""


class ServeClient:
    """A persistent connection to a :class:`~repro.serve.daemon.PatternServer`.

    Parameters
    ----------
    host, port:
        The daemon's TCP address (``PatternServer.address``).
    uds:
        A unix-domain socket path; when given, the client connects there
        instead of TCP (``PatternServer.uds_path`` on an asyncio daemon
        serving one).
    ns:
        A namespace name stamped onto every request (as the ``ns`` field)
        so this client scores against that store slot; ``None`` (default)
        targets the daemon's default namespace.  Explicit per-request
        ``ns`` parameters win over this.
    timeout:
        Socket timeout in seconds for connecting and for each response.
    obs:
        Optional :class:`~repro.obs.MetricsRegistry`.  When enabled, every
        request is timed into ``serve.client.request.seconds`` as a client
        span, and the span's :class:`~repro.obs.TraceContext` rides the
        request's ``trace`` field — so a tracing daemon parents its
        operation span under this client's, and the two processes' spans
        stitch into one tree by ``trace_id``.

    The connection opens lazily on the first request and is reusable across
    requests; use the context-manager form to close it deterministically.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        uds: str | None = None,
        ns: str | None = None,
        timeout: float = 30.0,
        obs: MetricsRegistry | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.uds = uds
        self.ns = ns
        self.timeout = timeout
        self.obs = obs
        self._sock: socket.socket | None = None
        # The buffered reader/writer over the socket; ``Any`` because the
        # lazy-connect dance (None until the first request) defeats narrowing.
        self._file: Any = None

    # ------------------------------------------------------------------
    # Connection lifecycle
    # ------------------------------------------------------------------
    def connect(self) -> ServeClient:
        """Open the connection now (otherwise the first request does)."""
        if self._sock is None:
            if self.uds is not None:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(self.timeout)
                try:
                    sock.connect(self.uds)
                except OSError:
                    sock.close()
                    raise
                self._sock = sock
            else:
                self._sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
            self._file = self._sock.makefile("rwb")
        return self

    def close(self) -> None:
        """Close the connection (requests after this reconnect lazily)."""
        file, self._file = self._file, None
        sock, self._sock = self._sock, None
        if file is not None:
            file.close()
        if sock is not None:
            sock.close()

    def __enter__(self) -> ServeClient:
        return self.connect()

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # The request primitive
    # ------------------------------------------------------------------
    def request(self, op: str, **params: Any) -> dict[str, Any]:
        """Send one operation and return its success payload.

        Raises :class:`ServeError` on an error response or a connection the
        daemon closed mid-request.  Any transport failure mid-request — a
        socket timeout, a broken pipe — closes the connection, because a
        response may still be in flight on it: reusing the socket would
        desynchronise the request/response pairing and hand a later caller
        the wrong payload.  The next request reconnects lazily.

        With an enabled ``obs`` registry the whole round-trip runs inside
        a ``serve.client.request.seconds`` span; its context (or any
        ambient :class:`~repro.obs.TraceContext` when no registry is
        attached) is injected as the request's ``trace`` field, which a
        tracing daemon parents its operation span under and echoes back.
        """
        obs = self.obs
        if obs is not None and obs.enabled:
            with obs.span("serve.client.request.seconds", op=op):
                return self._request(op, params)
        return self._request(op, params)

    def _request(self, op: str, params: dict[str, Any]) -> dict[str, Any]:
        """The untraced request primitive ``request`` wraps."""
        self.connect()
        payload: dict[str, Any] = {"op": op}
        payload.update(params)
        if self.ns is not None:
            payload.setdefault("ns", self.ns)
        context = current_context()
        if context is not None:
            payload.setdefault("trace", context.to_wire())
        try:
            self._file.write(encode_line(payload))
            self._file.flush()
            line = self._file.readline()
        except Exception:
            self.close()
            raise
        if not line:
            self.close()
            raise ServeError(f"connection closed by the daemon during {op!r}")
        response = decode_line(line)
        if not response.get("ok"):
            raise ServeError(response.get("error", "unknown daemon error"))
        return response

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def ping(self) -> PingInfo:
        """Liveness + store snapshot, typed (see :class:`~repro.serve.protocol.PingInfo`).

        Carries the pattern count, reload counters and last-reload duration,
        monotonic uptime ticks, total requests served, and the daemon pid.
        """
        return cast(PingInfo, self.request("ping"))

    def stats(self) -> dict[str, Any]:
        """The daemon's metrics snapshot (deterministic sorted mapping).

        The shape is ``{"counters": ..., "gauges": ..., "histograms": ...}``
        — see :meth:`repro.obs.MetricsRegistry.snapshot`.  Per-operation
        request counts live under ``counters["serve.op.<op>.requests"]`` and
        latency summaries (count/sum/min/max/p50/p95/p99) under
        ``histograms["serve.op.<op>.seconds"]``.
        """
        return cast(dict[str, Any], self.request("stats")["stats"])

    def match(self, sequences: str | list[Any]) -> dict[str, Any]:
        """Match every served pattern against ``sequences`` in one pass.

        Returns the wire form of a :class:`~repro.match.automaton.MatchResult`:
        ``num_sequences``, ``coverage`` and per-pattern ``entries`` (pattern,
        total support, per-sequence counts keyed by the 1-based sequence
        index as a string).
        """
        return self.request("match", sequences=sequences)

    def score(self, sequences: str | list[Any]) -> list[dict[str, Any]]:
        """Coverage/anomaly score of each query sequence, in input order."""
        return self.request("score", sequences=sequences)["scores"]

    def rank(
        self, sequences: str | list[Any], k: int | None = None, *, by: str = "anomaly"
    ) -> list[list[Any]]:
        """Query sequences ranked by ``by`` — ``[index, score]`` pairs."""
        return self.request("rank", sequences=sequences, k=k, by=by)["ranked"]

    def top_k(
        self, sequences: str | list[Any], k: int = 10, *, by: str = "support"
    ) -> list[list[Any]]:
        """The served patterns most present in the query — ``[pattern, support]`` pairs."""
        return self.request("top_k", sequences=sequences, k=k, by=by)["patterns"]

    def reload(self, force: bool = False) -> dict[str, Any]:
        """Ask the daemon to swap in a republished store file."""
        return self.request("reload", force=force)

    def namespaces(self) -> dict[str, Any]:
        """The daemon's served namespaces, keyed by name.

        Each value carries ``patterns``, ``generation`` (the publish
        epoch that keys the response cache), ``store_path`` and
        ``zero_copy``.  This operation always answers for the whole
        daemon, whatever this client's ``ns`` is.
        """
        return cast(dict[str, Any], self.request("namespaces")["namespaces"])

    def trace(self, limit: int | None = None) -> dict[str, Any]:
        """The daemon's recent completed spans (its trace-recorder ring).

        Returns ``{"spans": [wire dicts, oldest first], "dropped": ...,
        "total": ..., "enabled": ...}`` — the newest ``limit`` spans when
        given.  A daemon without a recorder reports ``enabled: false`` and
        no spans.
        """
        if limit is None:
            return self.request("trace")
        return self.request("trace", limit=limit)

    def shutdown(self) -> dict[str, Any]:
        """Stop the daemon (it responds, then exits its serving loop)."""
        response = self.request("shutdown")
        self.close()
        return response
