"""Wire format shared by the serving daemon and its client.

The protocol is deliberately boring: one JSON object per line in both
directions over a plain TCP connection.  A request is
``{"op": <name>, ...params}`` (an optional ``"id"`` is echoed back for
callers that pipeline); a response is ``{"ok": true, ...payload}`` or
``{"ok": false, "error": <message>}``.  Newline framing means any language
with a socket and a JSON parser can speak to the daemon — no schema
compiler, no dependency.

Operations (see :class:`repro.serve.daemon.PatternServer` for semantics):

``ping``
    Liveness + store snapshot (pattern count, reload counters).
``match``
    Match every served pattern against ``sequences`` in one shared pass.
``score``
    Coverage/anomaly score per query sequence.
``rank``
    Query sequences ordered by anomaly (or coverage).
``top_k`` (alias ``top-k``)
    The served patterns most present in the query.
``reload``
    Swap in a republished store file (no-op when the file is unchanged).
``namespaces``
    The served namespaces: per-namespace pattern count, publish
    generation, store path, and zero-copy flag.
``stats``
    The daemon's metrics snapshot (per-op request counts and latency
    histograms, bytes in/out, reload counters) as deterministic sorted JSON.
``trace``
    The daemon's recent completed spans (the trace-recorder ring) as wire
    dicts, plus the ring's drop/total counters; ``limit`` trims to the
    newest N.
``shutdown``
    Stop the daemon after responding.

Any request may carry an optional ``ns`` field selecting the namespace —
the named store slot — it runs against; requests without it go to the
``default`` namespace, whose wire behaviour is exactly the single-store
daemon's.

Any request may carry an optional ``trace`` field — a
``{"trace_id": ..., "span_id": ...}`` wire context
(:meth:`repro.obs.TraceContext.to_wire`).  A tracing daemon parents its
operation span under it and echoes its own context back as the response's
``trace`` field, which is how client-side and daemon-side spans stitch
into one tree.

Pattern events are restricted to JSON scalars by construction (stores
persist str/int events only), so patterns travel as plain JSON arrays and
support tables as ``[pattern, support]`` pairs — JSON objects cannot key on
arrays.

This module holds the pure encode/decode helpers so the client never
imports the server (and vice versa); everything here is side-effect free.
"""

from __future__ import annotations

import json
from typing import Any, TypedDict

from repro.core.pattern import Pattern
from repro.match.automaton import MatchResult
from repro.match.service import SequenceScore

#: Request operations the daemon understands (``top-k`` is accepted for
#: ``top_k``); named in the unknown-operation error.
OPERATIONS = (
    "ping",
    "match",
    "score",
    "rank",
    "top_k",
    "reload",
    "namespaces",
    "stats",
    "trace",
    "shutdown",
)


class PingInfo(TypedDict):
    """The typed shape of a ``ping`` response (the daemon's liveness card).

    ``uptime_ticks`` counts seconds of the daemon's *monotonic* clock since
    construction (not wall-clock — RL005); ``last_reload_seconds`` is
    ``None`` until the first actual (non-fast-path) reload.
    """

    ok: bool
    patterns: int
    algorithm: str | None
    min_sup: int | None
    store_path: str
    zero_copy: bool
    reloads: int
    automaton_reuses: int
    last_reload_error: str | None
    last_reload_seconds: float | None
    uptime_ticks: float
    requests_served: int
    pid: int

#: Hard cap on one request line.  Newline framing buffers a whole line
#: before parsing, so without a bound one connection could grow daemon
#: memory arbitrarily; 32 MiB comfortably fits large scoring batches.
MAX_LINE_BYTES = 32 * 1024 * 1024


class ProtocolError(ValueError):
    """A request or response line that does not follow the wire format."""


def encode_line(payload: dict[str, Any]) -> bytes:
    """One protocol line: compact JSON plus the newline terminator."""
    return json.dumps(payload, ensure_ascii=False, separators=(",", ":")).encode() + b"\n"


def decode_line(line: bytes) -> dict[str, Any]:
    """Parse one protocol line into its JSON object (clear errors otherwise)."""
    try:
        payload = json.loads(line.decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def ok_response(**payload: Any) -> dict[str, Any]:
    """A success response carrying ``payload``."""
    response: dict[str, Any] = {"ok": True}
    response.update(payload)
    return response


def error_response(message: str) -> dict[str, Any]:
    """A failure response carrying a human-readable error message."""
    return {"ok": False, "error": message}


def pattern_to_wire(pattern: Pattern) -> list[Any]:
    """A pattern as the JSON array of its events."""
    return list(pattern.events)


def score_to_wire(score: SequenceScore) -> dict[str, Any]:
    """A :class:`SequenceScore` as a JSON-serialisable object.

    ``supports`` and ``missing`` keep the mined-set order of the score; the
    support table is a list of ``[pattern, support]`` pairs because JSON
    objects cannot key on arrays.
    """
    return {
        "matched": score.matched,
        "total": score.total,
        "coverage": score.coverage,
        "anomaly": score.anomaly,
        "supports": [
            [pattern_to_wire(pattern), support]
            for pattern, support in score.supports.items()
        ],
        "missing": [pattern_to_wire(pattern) for pattern in score.missing],
    }


def match_result_to_wire(result: MatchResult) -> dict[str, Any]:
    """A :class:`MatchResult` as a JSON-serialisable object.

    Entries keep compilation (store) order; ``per_sequence`` keys become
    strings because JSON object keys always are — clients index with
    ``str(i)``.
    """
    return {
        "num_sequences": result.num_sequences,
        "coverage": result.coverage(),
        "entries": [
            {
                "pattern": pattern_to_wire(entry.pattern),
                "support": entry.support,
                "per_sequence": {str(i): n for i, n in entry.per_sequence.items()},
            }
            for entry in result
        ],
    }


def match_slice_to_wire(
    result: MatchResult, offset: int, count: int
) -> dict[str, Any]:
    """One request's slice of a batched :class:`MatchResult`, as wire.

    The batched dispatch path concatenates several requests' query
    sequences into one database and sweeps once; this projects sequences
    ``offset+1 .. offset+count`` of the combined result back onto local
    1-based indices.  Instances never span sequences and per-sequence
    counts are recorded in ascending sequence order, so the projection —
    slice supports summed, coverage recomputed over the slice — is
    byte-identical to :func:`match_result_to_wire` over a standalone match
    of just that request's sequences.
    """
    entries: list[dict[str, Any]] = []
    matched = 0
    for entry in result:
        per_sequence: dict[str, int] = {}
        support = 0
        for i, n in entry.per_sequence.items():
            if offset < i <= offset + count:
                per_sequence[str(i - offset)] = n
                support += n
        if support:
            matched += 1
        entries.append(
            {
                "pattern": pattern_to_wire(entry.pattern),
                "support": support,
                "per_sequence": per_sequence,
            }
        )
    coverage = matched / len(entries) if entries else 1.0
    return {"num_sequences": count, "coverage": coverage, "entries": entries}


def canonical_request(request: dict[str, Any]) -> str:
    """A request's cache identity: its parameters, canonically serialised.

    Strips the fields that do not affect the computed payload — ``id``
    (echo-only), ``trace`` (telemetry), ``op`` and ``ns`` (already embedded
    in the cache key as normalised values) — and serialises the rest with
    sorted keys, so two requests that differ only in field order or
    telemetry decoration share one cache entry.
    """
    params = {
        key: value
        for key, value in request.items()
        if key not in ("id", "trace", "op", "ns")
    }
    return json.dumps(
        params, sort_keys=True, ensure_ascii=False, separators=(",", ":")
    )


def ranked_to_wire(ranked: list[tuple[int, SequenceScore]]) -> list[list[Any]]:
    """``rank_sequences`` output as ``[index, score]`` pairs."""
    return [[index, score_to_wire(score)] for index, score in ranked]


def top_patterns_to_wire(ranked: list[tuple[Pattern, int]]) -> list[list[Any]]:
    """``top_patterns`` output as ``[pattern, support]`` pairs."""
    return [[pattern_to_wire(pattern), support] for pattern, support in ranked]
