"""Asyncio client for the pattern-serving daemon.

:class:`AsyncServeClient` is the event-loop twin of
:class:`repro.serve.client.ServeClient`: the same newline-delimited JSON
protocol, the same operation methods, the same error contract
(:class:`~repro.serve.client.ServeError` on error responses and broken
connections) — awaited instead of blocked on, over TCP or a unix-domain
socket.

Usage::

    from repro.serve import AsyncServeClient

    async with AsyncServeClient("127.0.0.1", 7007) as client:
        await client.ping()
        await client.score(["ABCD", "AXY"])

One connection carries one request at a time (requests are paired with
responses by order, so callers that want concurrency open one client per
in-flight request — connections are cheap, the daemon multiplexes).
"""

from __future__ import annotations

import asyncio
from typing import Any, cast

from repro.obs import MetricsRegistry, current_context
from repro.serve.client import ServeError
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    PingInfo,
    decode_line,
    encode_line,
)

__all__ = ["AsyncServeClient"]


class AsyncServeClient:
    """A persistent asyncio connection to a pattern-serving daemon.

    Parameters
    ----------
    host, port:
        The daemon's TCP address (``PatternServer.address``).
    uds:
        A unix-domain socket path; when given, the client connects there
        instead of TCP (``PatternServer.uds_path``).
    ns:
        A namespace name stamped onto every request (as the ``ns``
        field); ``None`` targets the daemon's default namespace.
        Explicit per-request ``ns`` parameters win over this.
    timeout:
        Seconds allowed for connecting and for each full round-trip.
    obs:
        Optional :class:`~repro.obs.MetricsRegistry`; when enabled, every
        request is timed into ``serve.client.request.seconds`` and the
        span's context rides the request's ``trace`` field, exactly like
        the sync client.

    The connection opens lazily on the first request; use the async
    context-manager form to close it deterministically.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        uds: str | None = None,
        ns: str | None = None,
        timeout: float = 30.0,
        obs: MetricsRegistry | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.uds = uds
        self.ns = ns
        self.timeout = timeout
        self.obs = obs
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None

    # ------------------------------------------------------------------
    # Connection lifecycle
    # ------------------------------------------------------------------
    async def connect(self) -> AsyncServeClient:
        """Open the connection now (otherwise the first request does)."""
        if self._writer is None:
            if self.uds is not None:
                opening = asyncio.open_unix_connection(
                    self.uds, limit=MAX_LINE_BYTES + 2
                )
            else:
                opening = asyncio.open_connection(
                    self.host, self.port, limit=MAX_LINE_BYTES + 2
                )
            self._reader, self._writer = await asyncio.wait_for(
                opening, self.timeout
            )
        return self

    async def close(self) -> None:
        """Close the connection (requests after this reconnect lazily)."""
        writer, self._writer = self._writer, None
        self._reader = None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def __aenter__(self) -> AsyncServeClient:
        return await self.connect()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # The request primitive
    # ------------------------------------------------------------------
    async def request(self, op: str, **params: Any) -> dict[str, Any]:
        """Send one operation and return its success payload.

        Raises :class:`~repro.serve.client.ServeError` on an error
        response or a connection the daemon closed mid-request.  Any
        transport failure mid-request closes the connection (a response
        may still be in flight on it; reuse would desynchronise the
        request/response pairing); the next request reconnects lazily.
        """
        obs = self.obs
        if obs is not None and obs.enabled:
            with obs.span("serve.client.request.seconds", op=op):
                return await self._request(op, params)
        return await self._request(op, params)

    async def _request(self, op: str, params: dict[str, Any]) -> dict[str, Any]:
        """The untraced request primitive ``request`` wraps."""
        await self.connect()
        reader, writer = self._reader, self._writer
        assert reader is not None and writer is not None
        payload: dict[str, Any] = {"op": op}
        payload.update(params)
        if self.ns is not None:
            payload.setdefault("ns", self.ns)
        context = current_context()
        if context is not None:
            payload.setdefault("trace", context.to_wire())
        try:
            writer.write(encode_line(payload))
            await asyncio.wait_for(writer.drain(), self.timeout)
            line = await asyncio.wait_for(reader.readline(), self.timeout)
        except Exception:
            await self.close()
            raise
        if not line:
            await self.close()
            raise ServeError(f"connection closed by the daemon during {op!r}")
        response = decode_line(line)
        if not response.get("ok"):
            raise ServeError(response.get("error", "unknown daemon error"))
        return response

    # ------------------------------------------------------------------
    # Operations (the sync client's surface, awaited)
    # ------------------------------------------------------------------
    async def ping(self) -> PingInfo:
        """Liveness + store snapshot (see :class:`~repro.serve.protocol.PingInfo`)."""
        return cast(PingInfo, await self.request("ping"))

    async def stats(self) -> dict[str, Any]:
        """The daemon's metrics snapshot (deterministic sorted mapping)."""
        return cast(dict[str, Any], (await self.request("stats"))["stats"])

    async def match(self, sequences: str | list[Any]) -> dict[str, Any]:
        """Match every served pattern against ``sequences`` in one pass."""
        return await self.request("match", sequences=sequences)

    async def score(self, sequences: str | list[Any]) -> list[dict[str, Any]]:
        """Coverage/anomaly score of each query sequence, in input order."""
        return cast(
            list[dict[str, Any]],
            (await self.request("score", sequences=sequences))["scores"],
        )

    async def rank(
        self, sequences: str | list[Any], k: int | None = None, *, by: str = "anomaly"
    ) -> list[list[Any]]:
        """Query sequences ranked by ``by`` — ``[index, score]`` pairs."""
        return cast(
            list[list[Any]],
            (await self.request("rank", sequences=sequences, k=k, by=by))["ranked"],
        )

    async def top_k(
        self, sequences: str | list[Any], k: int = 10, *, by: str = "support"
    ) -> list[list[Any]]:
        """The served patterns most present in the query — ``[pattern, support]`` pairs."""
        return cast(
            list[list[Any]],
            (await self.request("top_k", sequences=sequences, k=k, by=by))[
                "patterns"
            ],
        )

    async def reload(self, force: bool = False) -> dict[str, Any]:
        """Ask the daemon to swap in a republished store file."""
        return await self.request("reload", force=force)

    async def namespaces(self) -> dict[str, Any]:
        """The daemon's served namespaces, keyed by name."""
        return cast(
            dict[str, Any], (await self.request("namespaces"))["namespaces"]
        )

    async def trace(self, limit: int | None = None) -> dict[str, Any]:
        """The daemon's recent completed spans (its trace-recorder ring)."""
        if limit is None:
            return await self.request("trace")
        return await self.request("trace", limit=limit)

    async def shutdown(self) -> dict[str, Any]:
        """Stop the daemon (it responds, then exits its serving loop)."""
        response = await self.request("shutdown")
        await self.close()
        return response
