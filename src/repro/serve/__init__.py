"""repro.serve — the pattern-serving daemon: resident, queryable stores.

The read-side subsystem (:mod:`repro.match`) made mined patterns loadable
and matchable; this package keeps them *resident*: a long-running daemon
that loads pattern stores once (zero-copy over shared mappings where the
platform allows), compiles each shared automaton once, and answers scoring
traffic over a newline-delimited JSON protocol — TCP and, on the asyncio
transport, a unix-domain socket — until told to stop.

* :mod:`repro.serve.protocol` — the wire format (one JSON object per line)
  and its pure encode/decode helpers, shared by daemon and client.
* :mod:`repro.serve.core` — :class:`~repro.serve.core.ServeCore`, the
  transport-agnostic request engine: namespace-keyed multi-store routing,
  generation-keyed response caching, batched dispatch, graceful ``reload``
  on store republication (compiled-automaton reuse when only supports
  changed), and the per-request telemetry contract.
* :mod:`repro.serve.aio` — :class:`PatternServer`, the asyncio event-loop
  transport (the default): TCP + unix-domain socket listeners,
  micro-batched ``score``/``match`` dispatch through a thread pool, and
  the in-loop response-cache fast path.
* :mod:`repro.serve.daemon` — :class:`ThreadedPatternServer`, the original
  thread-per-connection :mod:`socketserver` transport over the same core;
  the equivalence baseline, and an embedded option for loop-free callers.
* :mod:`repro.serve.client` / :mod:`repro.serve.aioclient` —
  :class:`ServeClient` and :class:`AsyncServeClient`, the sync and async
  helpers that speak the protocol from Python (any language with sockets
  + JSON works).

Surfaced as :func:`repro.api.serve` and the ``serve`` CLI subcommand.
"""

from repro.serve.aio import PatternServer, serve
from repro.serve.aioclient import AsyncServeClient
from repro.serve.client import ServeClient, ServeError
from repro.serve.daemon import ThreadedPatternServer
from repro.serve.protocol import PingInfo

__all__ = [
    "AsyncServeClient",
    "PatternServer",
    "PingInfo",
    "ServeClient",
    "ServeError",
    "ThreadedPatternServer",
    "serve",
]
