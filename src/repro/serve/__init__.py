"""repro.serve — the pattern-serving daemon: a resident, queryable store.

The read-side subsystem (:mod:`repro.match`) made mined patterns loadable
and matchable; this package keeps them *resident*: a long-running daemon
that loads a pattern store once (zero-copy over a shared mapping where the
platform allows), compiles the shared automaton once, and answers scoring
traffic over a newline-delimited JSON TCP protocol until told to stop.

* :mod:`repro.serve.protocol` — the wire format (one JSON object per line)
  and its pure encode/decode helpers, shared by daemon and client.
* :mod:`repro.serve.daemon` — :class:`PatternServer`, the
  :mod:`socketserver` loop exposing ``match`` / ``score`` / ``rank`` /
  ``top_k`` over the loaded store, with graceful ``reload`` on store
  republication (compiled-automaton reuse when only supports changed).
* :mod:`repro.serve.client` — :class:`ServeClient`, the small helper that
  speaks the protocol from Python (any language with sockets + JSON works).

Surfaced as :func:`repro.api.serve` and the ``serve`` CLI subcommand.
"""

from repro.serve.client import ServeClient, ServeError
from repro.serve.daemon import PatternServer, serve
from repro.serve.protocol import PingInfo

__all__ = ["PatternServer", "PingInfo", "ServeClient", "ServeError", "serve"]
