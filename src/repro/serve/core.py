"""Transport-agnostic request engine shared by every serving daemon.

:class:`ServeCore` is the part of the pattern-serving daemon that does not
care how bytes arrive: it owns the loaded stores, routes requests to
operations, records telemetry, and turns every request line into exactly
one response line.  Both transports are thin shells over it — the
:class:`~repro.serve.daemon.ThreadedPatternServer` socketserver loop and
the asyncio :class:`~repro.serve.aio.PatternServer` event loop — so the
wire behaviour of the two daemons is identical by construction.

Three serving features live here because every transport needs them:

* **Namespaces** — one daemon, many mmap'd stores.  Each namespace is an
  independently reloadable ``(store, matcher)`` pair keyed by name; a
  request selects one with ``{"ns": ...}`` and requests without the field
  go to the default namespace, whose wire behaviour is exactly the
  single-store daemon's.
* **Generations** — every namespace's serving state carries a monotonic
  generation number, bumped on every successful store swap (full reload
  or supports-only adoption alike).  The generation is the cache epoch:
  responses computed against generation ``g`` can never be served once a
  republish installs ``g+1``.
* **The response cache** — a bounded LRU over ``(namespace, generation,
  operation, canonical request)`` for the pure query operations
  (``score`` / ``match`` / ``rank`` / ``top_k``).  Hits return a copy of
  the cached payload, so a hit is byte-identical to the miss that filled
  it; the reload/patch path invalidates by generation bump, never by
  enumeration.

Request handling is split into three phases so transports can interleave
them with their own scheduling: :meth:`ServeCore.begin` decodes and stamps
a :class:`RequestTicket`, :meth:`ServeCore.dispatch` computes the response
dict (safe to run on any worker thread), and :meth:`ServeCore.finish`
encodes the response line and records the request's telemetry.
:meth:`ServeCore.handle_raw` runs the three in sequence — the whole story
for one request — while :meth:`ServeCore.process_batch` dispatches a batch
of tickets with one shared automaton sweep amortised across every
``score`` / ``match`` request in it.
"""

from __future__ import annotations

import itertools
import os
import re
import sys
import threading
from collections import OrderedDict
from collections.abc import Callable, Mapping, Sequence as PySequence
from pathlib import Path
from typing import Any

from repro.core.constraints import GapConstraint
from repro.db.database import SequenceDatabase
from repro.db.sequence import as_sequence
from repro.match.service import PatternMatcher, score_from_match
from repro.match.store import PatternStore, load_patterns
from repro.obs import (
    Counter,
    Histogram,
    MetricsRegistry,
    SpanJournalWriter,
    SpanRecord,
    TraceContext,
    child_of,
    reset_context,
    set_context,
)
from repro.serve.protocol import (
    OPERATIONS,
    ProtocolError,
    canonical_request,
    decode_line,
    encode_line,
    error_response,
    match_result_to_wire,
    match_slice_to_wire,
    ok_response,
    ranked_to_wire,
    score_to_wire,
    top_patterns_to_wire,
)

PathLike = str | Path

#: The name requests without an ``ns`` field resolve to.
DEFAULT_NAMESPACE = "default"

#: Operations whose responses are pure functions of (store generation,
#: request parameters) — the only ones the response cache may hold.
CACHEABLE_OPERATIONS = frozenset({"score", "match", "rank", "top_k"})

#: Operations the batched dispatch path may fold into one shared sweep.
BATCHABLE_OPERATIONS = frozenset({"score", "match"})

#: Histogram bounds for the per-flush batch-size distribution (requests
#: per batch, not seconds).
BATCH_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)

_NS_SLUG_RE = re.compile(r"[^a-z0-9_]+")


def _ns_slug(name: str) -> str:
    """A namespace name reduced to a metric-safe ``[a-z0-9_]`` segment."""
    slug = _NS_SLUG_RE.sub("_", name.lower())
    return slug or "_"


class ResponseCache:
    """A small thread-safe LRU over response payload dicts.

    Keys embed the namespace's store generation, so invalidation is a
    generation bump on the publishing side — stale entries are never
    served, they simply stop being addressable and age out of the LRU.
    Values are stored as pristine copies and returned as copies, so a
    cached payload can never be mutated by the response plumbing (which
    stamps ``id`` and ``trace`` onto the dict it returns).
    """

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError(f"cache maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple[str, int, str, str], dict[str, Any]] = (
            OrderedDict()
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: tuple[str, int, str, str]) -> dict[str, Any] | None:
        """The cached payload for ``key`` (refreshed as most recent), or ``None``."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                return None
            self._entries.move_to_end(key)
            return dict(value)

    def put(self, key: tuple[str, int, str, str], value: dict[str, Any]) -> int:
        """Store a copy of ``value`` under ``key``; returns evictions made."""
        evicted = 0
        with self._lock:
            self._entries[key] = dict(value)
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                evicted += 1
        return evicted

    def clear(self) -> None:
        """Drop every entry (used by tests; production invalidates by generation)."""
        with self._lock:
            self._entries.clear()


class _ServingState:
    """One loaded store with its compiled matcher and the file identity it came from.

    ``identity`` is ``(st_ino, st_mtime_ns, st_size)``: atomic republishes
    (:meth:`PatternStore.save`) always create a new inode, so the inode
    catches same-size republishes even on filesystems with coarse
    timestamps, while mtime/size catch in-place supports patches.

    ``ticket`` is the server's monotonic load counter, drawn when the load
    *started*.  The file only ever moves forward, so a later-started load
    observed bytes at least as fresh as any earlier one — tickets order
    racing reloads without trusting wall-clock timestamps.

    ``generation`` is the namespace's publish epoch: assigned at swap time
    as the previous state's generation plus one, it keys the response
    cache, so every successful swap (full reload or supports-only
    adoption) retires every cached response computed before it.
    """

    __slots__ = ("store", "matcher", "identity", "ticket", "generation")

    def __init__(
        self,
        store: PatternStore,
        matcher: PatternMatcher,
        stat: os.stat_result,
        ticket: int,
    ) -> None:
        self.store = store
        self.matcher = matcher
        self.identity = (stat.st_ino, stat.st_mtime_ns, stat.st_size)
        self.ticket = ticket
        self.generation = 0


class _Namespace:
    """One served store slot: a name, its file path, and the live state."""

    __slots__ = ("name", "path", "state")

    def __init__(self, name: str, path: Path, state: _ServingState) -> None:
        self.name = name
        self.path = path
        self.state = state


class RequestTicket:
    """One request's journey through begin → dispatch → finish.

    Created by :meth:`ServeCore.begin` on whatever thread reads the bytes,
    carried through dispatch on whatever thread computes the response, and
    closed out by :meth:`ServeCore.finish`.  The trace context is *created*
    at begin time (so the response can echo it) but only made ambient
    around the dispatch, where the work it should parent actually runs.
    """

    __slots__ = (
        "raw",
        "request",
        "op",
        "op_name",
        "request_id",
        "ns_label",
        "started",
        "parent",
        "context",
        "response",
        "stop",
    )

    def __init__(self, raw: bytes) -> None:
        self.raw = raw
        self.request: dict[str, Any] | None = None
        self.op: Any = None
        self.op_name = "invalid"
        self.request_id: Any = None
        self.ns_label: str | None = None
        self.started = 0.0
        self.parent: TraceContext | None = None
        self.context: TraceContext | None = None
        self.response: dict[str, Any] | None = None
        self.stop = False

    @property
    def batchable(self) -> bool:
        """Whether the batched dispatch path may fold this request into a sweep."""
        return self.response is None and self.op_name in BATCHABLE_OPERATIONS


class ServeCore:
    """The serving daemon's request engine, independent of any transport.

    Parameters
    ----------
    store_path:
        The default namespace's pattern-store file (binary or JSON,
        sniffed).  Loaded at construction — zero-copy over a shared
        read-only mapping for binary stores when ``mmap`` allows — and
        compiled into the shared automaton before the first request.
    stores:
        Optional extra namespaces: a mapping of namespace name to store
        file.  Each loads exactly like the default store and reloads
        independently; requests select one with ``{"ns": <name>}``.
    constraint:
        Optional gap constraint applied to every match (the mined
        constraint, if mining used one).
    mmap:
        Store read path: ``"auto"`` (default) / ``True`` / ``False``, with
        the semantics of :meth:`repro.match.store.PatternStore.open`.
    auto_reload:
        ``True`` re-stats a namespace's store file before every request
        routed to it and reloads when it changed; ``False`` (default)
        reloads only on the explicit ``reload`` operation.
    obs:
        Optional :class:`~repro.obs.MetricsRegistry` to record into:
        per-operation request counts (``serve.op.<op>.requests``) and
        latency histograms (``serve.op.<op>.seconds``), per-namespace
        request counters (``serve.ns.<ns>.requests``), cache hit/miss/
        eviction counters, the batch-size histogram, bytes in/out, and
        reload/adoption counters and durations.  The ``stats`` operation
        returns this registry's snapshot.  Defaults to a private enabled
        registry.  When the registry carries an enabled
        :class:`~repro.obs.TraceRecorder`, every request additionally
        records an operation span — parented under the request's optional
        ``trace`` wire context and echoed back on the response — and the
        ``trace`` operation serves the recorder's ring.
    trace_out:
        Optional path of a JSON-lines span journal
        (:class:`~repro.obs.SpanJournalWriter`, append mode), drained
        after each request.  Requires a registry with a recorder.
    slow_ms:
        When set, any request slower than this many milliseconds emits one
        ``# slow op=<op> ms=<elapsed> trace=<trace_id>`` line through
        ``slow_sink``.
    slow_sink:
        Where slow-request lines go; defaults to stderr.
    cache_size:
        Maximum entries in the generation-keyed response cache; ``0``
        disables caching entirely.
    """

    def __init__(
        self,
        store_path: PathLike,
        *,
        stores: Mapping[str, PathLike] | None = None,
        constraint: GapConstraint | None = None,
        mmap: bool | str = "auto",
        auto_reload: bool = False,
        obs: MetricsRegistry | None = None,
        trace_out: PathLike | None = None,
        slow_ms: float | None = None,
        slow_sink: Callable[[str], None] | None = None,
        cache_size: int = 1024,
    ) -> None:
        self.store_path = Path(store_path)
        self._constraint = constraint
        self._mmap = mmap
        self._auto_reload = auto_reload
        self._lock = threading.Lock()
        self.reloads = 0
        self.automaton_reuses = 0
        self.requests_served = 0
        self.last_reload_error: str | None = None
        self.last_reload_seconds: float | None = None
        self.obs = obs if obs is not None else MetricsRegistry()
        self._started = self.obs.clock()
        # Instruments are pre-bound once (null instruments on a disabled
        # registry), so the request path never pays a per-request registry
        # dict lookup — the RL006 discipline, applied to the daemon.
        self._op_metrics: dict[str, tuple[Counter, Histogram]] = {
            name: (
                self.obs.counter(f"serve.op.{name}.requests"),  # reprolint: disable=RL008 -- the per-op family is enumerated from the closed OPERATIONS tuple, not free-form
                self.obs.histogram(f"serve.op.{name}.seconds"),  # reprolint: disable=RL008 -- same closed enumeration; each expansion is a conformant dotted name
            )
            for name in (*OPERATIONS, "invalid")
        }
        # Op span names are the op histogram names — one vocabulary for the
        # latency table and the trace tree.
        self._op_span_names: dict[str, str] = {
            name: histogram.name for name, (_, histogram) in self._op_metrics.items()
        }
        self._trace_lock = threading.Lock()
        self._trace_cursor = 0
        self._trace_writer = (
            SpanJournalWriter(trace_out) if trace_out is not None else None
        )
        self._slow_ms = slow_ms
        self._slow_sink: Callable[[str], None] = (
            slow_sink
            if slow_sink is not None
            else lambda line: print(line, file=sys.stderr)
        )
        self._requests_total = self.obs.counter("serve.requests")
        self._errors_total = self.obs.counter("serve.errors")
        self._bytes_in = self.obs.counter("serve.bytes_in")
        self._bytes_out = self.obs.counter("serve.bytes_out")
        self._cache_hits = self.obs.counter("serve.cache.hits")
        self._cache_misses = self.obs.counter("serve.cache.misses")
        self._cache_evictions = self.obs.counter("serve.cache.evictions")
        self._batch_sizes = self.obs.histogram(
            "serve.batch.size", bounds=BATCH_SIZE_BUCKETS
        )
        self._cache = ResponseCache(cache_size) if cache_size > 0 else None
        self._load_tickets = itertools.count()
        self._namespaces: dict[str, _Namespace] = {}
        for name, path in {DEFAULT_NAMESPACE: self.store_path, **dict(stores or {})}.items():
            if not isinstance(name, str) or not name:
                raise ValueError(f"namespace names must be non-empty strings, got {name!r}")
            if name in self._namespaces:
                raise ValueError(f"duplicate namespace {name!r}")
            namespace = _Namespace(name, Path(path), self._load_state(Path(path), None)[0])
            self._namespaces[name] = namespace
        # The per-namespace request counters are enumerated once from the
        # closed set of configured namespaces, exactly like the per-op
        # family above.
        self._ns_requests: dict[str, Counter] = {
            name: self.obs.counter(f"serve.ns.{_ns_slug(name)}.requests")  # reprolint: disable=RL008 -- enumerated from the closed, construction-time namespace set; slugs are conformant segments
            for name in self._namespaces
        }

    # ------------------------------------------------------------------
    # Store lifecycle
    # ------------------------------------------------------------------
    @property
    def namespaces(self) -> tuple[str, ...]:
        """The configured namespace names, default first, extras sorted."""
        extras = sorted(name for name in self._namespaces if name != DEFAULT_NAMESPACE)
        return (DEFAULT_NAMESPACE, *extras)

    def _namespace(self, name: str | None) -> _Namespace:
        """Resolve a request's ``ns`` field (``None`` → default) to its slot."""
        if name is None:
            name = DEFAULT_NAMESPACE
        if not isinstance(name, str):
            raise ProtocolError(f"'ns' must be a string, got {type(name).__name__}")
        namespace = self._namespaces.get(name)
        if namespace is None:
            known = ", ".join(self.namespaces)
            raise ProtocolError(f"unknown namespace {name!r} (serving: {known})")
        return namespace

    def _load_state(
        self, path: Path, adopt_from: PatternStore | None
    ) -> tuple[_ServingState, bool]:
        """Load the store file and compile (or adopt) its automaton.

        Returns ``(state, adopted)`` where ``adopted`` says whether the new
        store reused ``adopt_from``'s compiled automaton.  The load ticket
        is drawn *before* the file is read, so ticket order bounds bytes
        freshness (see :class:`_ServingState`).
        """
        ticket = next(self._load_tickets)
        stat = os.stat(path)
        store = load_patterns(path, mmap=self._mmap)
        adopted = adopt_from is not None and store.adopt_automaton(adopt_from)
        matcher = PatternMatcher(store, constraint=self._constraint, obs=self.obs)
        return _ServingState(store, matcher, stat, ticket), adopted

    @property
    def store(self) -> PatternStore:
        """The currently served default-namespace store."""
        return self._namespaces[DEFAULT_NAMESPACE].state.store

    def generation(self, ns: str | None = None) -> int:
        """The current publish epoch of a namespace (cache-key component)."""
        return self._namespace(ns).state.generation

    def reload(self, force: bool = False, ns: str | None = None) -> dict[str, Any]:
        """Swap in a namespace's store file if it was republished (or ``force``).

        Returns a summary dict: ``reloaded`` (whether a swap happened),
        ``automaton_reused`` (whether the new store adopted the old compiled
        automaton — the supports-only republish fast path) and ``patterns``.
        In-flight requests keep the state they started with; new requests
        see the fresh store.

        The unchanged-file fast path is lock-free (one ``stat`` + tuple
        compare) and the expensive part of an actual reload — file load and
        automaton compile — runs outside the lock too, so a republish never
        stalls concurrent requests; only the state swap itself is mutual.
        Racing reloads both do the work, but the swap keeps whichever load
        *started* later (:meth:`_swap_state` compares monotonic load
        tickets — the file only moves forward, so a later-started load read
        bytes at least as fresh), so a slow loader finishing late can never
        reinstall a superseded store, and no wall-clock comparison is
        involved.
        """
        return self._reload_namespace(self._namespace(ns), force=force)

    def _reload_namespace(self, namespace: _Namespace, force: bool = False) -> dict[str, Any]:
        """The per-namespace body of :meth:`reload`."""
        stat = os.stat(namespace.path)
        current = namespace.state
        if (
            not force
            and (stat.st_ino, stat.st_mtime_ns, stat.st_size) == current.identity
        ):
            return {
                "reloaded": False,
                "automaton_reused": False,
                "patterns": len(current.store),
            }
        started = self.obs.clock()
        state, adopted = self._load_state(namespace.path, current.store)
        swapped = self._swap_state(namespace, state, adopted)
        elapsed = self.obs.clock() - started
        if self.obs.enabled:
            with self.obs.locked():
                self.obs.histogram("serve.reload.seconds").observe(elapsed)
                if swapped:
                    self.obs.counter("serve.reloads").inc()
                    if adopted:
                        self.obs.counter("serve.automaton_adoptions").inc()
        with self._lock:
            self.last_reload_seconds = elapsed
        served = namespace.state
        return {
            "reloaded": swapped,
            "automaton_reused": swapped and adopted,
            "patterns": len(served.store),
        }

    def _swap_state(
        self, namespace: _Namespace, state: _ServingState, adopted: bool
    ) -> bool:
        """Install ``state`` unless the served state came from a later-started load.

        Load tickets are drawn before the file is read and the file only
        ever moves forward, so a later ticket means at-least-as-fresh
        bytes — an ordering immune to clock steps and coarse filesystem
        timestamps.  The swap assigns the incoming state the next
        generation, so every cached response keyed to the superseded state
        becomes unaddressable the moment the swap lands.  Returns whether
        the swap happened.
        """
        with self._lock:
            if state.ticket < namespace.state.ticket:
                return False
            state.generation = namespace.state.generation + 1
            namespace.state = state
            self.reloads += 1
            if adopted:
                self.automaton_reuses += 1
            return True

    def _maybe_auto_reload(self, namespace: _Namespace) -> None:
        """Pick up a republished store before handling a request (opt-in).

        A failed automatic reload — a mid-republish gap, a truncated or
        unreadable file, an unknown format version — must never poison the
        request being handled (or shutdown): the daemon keeps serving its
        loaded state and remembers the failure, which ``ping`` surfaces as
        ``last_reload_error``.  An explicit ``reload`` request still
        reports its failure to the caller.
        """
        if not self._auto_reload:
            return
        try:
            self._reload_namespace(namespace)
        except Exception as exc:  # noqa: BLE001 - keep serving the loaded state
            message: str | None = f"{type(exc).__name__}: {exc}"
            self.obs.counter("serve.auto_reload_failures").inc()
        else:
            message = None
        # The assignment happens under the (non-reentrant) lock, but only
        # after the reload — and the _swap_state it runs — has released it.
        with self._lock:
            self.last_reload_error = message

    # ------------------------------------------------------------------
    # Request lifecycle: begin → dispatch → finish
    # ------------------------------------------------------------------
    def begin(self, raw: bytes) -> RequestTicket:
        """Decode one request line into a ticket; never raises.

        A malformed line leaves ``ticket.response`` pre-filled with the
        error response (and the ticket filed under the ``invalid``
        pseudo-operation); dispatch then short-circuits to it.  With
        tracing on, the ticket carries a fresh child context of the
        request's optional ``trace`` wire context — created here so the
        response can echo it, made ambient only around dispatch.
        """
        obs = self.obs
        ticket = RequestTicket(raw)
        ticket.started = obs.clock() if obs.enabled else 0.0
        try:
            request = decode_line(raw)
        except ProtocolError as exc:
            ticket.response = error_response(str(exc))
            return ticket
        ticket.request = request
        ticket.request_id = request.get("id")
        op = request.get("op")
        if op == "top-k":
            op = "top_k"
        ticket.op = op
        if isinstance(op, str) and op in self._op_metrics:
            ticket.op_name = op
        recorder = obs.recorder
        if obs.enabled and recorder is not None and recorder.enabled:
            ticket.parent = TraceContext.from_wire(request.get("trace"))
            ticket.context = child_of(ticket.parent)
        return ticket

    def dispatch(self, ticket: RequestTicket) -> dict[str, Any]:
        """Compute one ticket's response dict; never raises.

        Runs on whatever thread the transport chose (a handler thread, an
        executor worker).  The ticket's trace context is ambient for the
        duration, so matcher spans nest beneath the operation span that
        :meth:`finish` records.
        """
        if ticket.response is not None:
            return ticket.response
        request = ticket.request
        assert request is not None  # begin() always sets it when response is None
        token = set_context(ticket.context) if ticket.context is not None else None
        try:
            namespace = self._namespace(request.get("ns"))
            ticket.ns_label = namespace.name
            self._maybe_auto_reload(namespace)
            response = self._handle_op(ticket.op, request, namespace)
            ticket.stop = ticket.op == "shutdown"
        except ProtocolError as exc:
            response = error_response(str(exc))
        except Exception as exc:  # noqa: BLE001 - the daemon must keep serving
            response = error_response(f"{type(exc).__name__}: {exc}")
        finally:
            if token is not None:
                reset_context(token)
        return response

    def try_cached(self, ticket: RequestTicket) -> dict[str, Any] | None:
        """A cache-only dispatch attempt, cheap enough for an event loop.

        Returns the cached response copy when the ticket is a cacheable
        operation whose key is present under the namespace's *current*
        generation, ``None`` otherwise (including when auto-reload is on:
        then every request must run the reload check first, which belongs
        on a worker thread, not the loop).
        """
        if (
            self._cache is None
            or self._auto_reload
            or ticket.response is not None
            or ticket.op_name not in CACHEABLE_OPERATIONS
        ):
            return None
        request = ticket.request
        assert request is not None
        ns_value = request.get("ns")
        if ns_value is not None and not isinstance(ns_value, str):
            return None
        namespace = self._namespaces.get(ns_value if ns_value is not None else DEFAULT_NAMESPACE)
        if namespace is None:
            return None
        state = namespace.state
        key = (namespace.name, state.generation, ticket.op_name, canonical_request(request))
        cached = self._cache.get(key)
        if cached is None:
            return None
        ticket.ns_label = namespace.name
        self._cache_hits.inc()
        ticket.stop = False
        return cached

    def finish(self, ticket: RequestTicket, response: dict[str, Any]) -> bytes:
        """Encode the response line and record the request's telemetry.

        Every request — including malformed ones, filed under the
        ``invalid`` pseudo-operation — is counted and timed into the
        registry *after* its response is encoded, under one registry lock
        acquisition, so in every snapshot the per-op histogram count equals
        the per-op request counter (a ``stats`` response therefore never
        counts the request that carried it).

        With tracing on, the whole handling becomes the request's
        *operation span*: parented under the request's optional ``trace``
        wire context, echoed on the response as ``trace``, and recorded
        here — which is also when the span journal drains and the
        slow-request line (if configured) is emitted.
        """
        obs = self.obs
        if ticket.request_id is not None:
            response.setdefault("id", ticket.request_id)
        context = ticket.context
        if context is not None:
            response["trace"] = context.to_wire()
        encoded = encode_line(response)
        if obs.enabled:
            elapsed = obs.clock() - ticket.started
            op_requests, op_seconds = self._op_metrics[ticket.op_name]
            ns_requests = (
                self._ns_requests.get(ticket.ns_label)
                if ticket.ns_label is not None
                else None
            )
            with obs.locked():
                self._requests_total.inc()
                op_requests.inc()
                op_seconds.observe(elapsed)
                if ns_requests is not None:
                    ns_requests.inc()
                self._bytes_in.inc(len(ticket.raw))
                self._bytes_out.inc(len(encoded))
                if not response.get("ok"):
                    self._errors_total.inc()
            recorder = obs.recorder
            if context is not None and recorder is not None:
                recorder.record(
                    SpanRecord(
                        trace_id=context.trace_id,
                        span_id=context.span_id,
                        parent_id=None if ticket.parent is None else ticket.parent.span_id,
                        name=self._op_span_names[ticket.op_name],
                        start=ticket.started,
                        duration=elapsed,
                        attributes={"op": ticket.op_name},
                    )
                )
                self._drain_trace()
            if self._slow_ms is not None and elapsed * 1000.0 >= self._slow_ms:
                trace_id = context.trace_id if context is not None else "-"
                self._slow_sink(
                    f"# slow op={ticket.op_name} ms={elapsed * 1000.0:.1f} trace={trace_id}"
                )
        with self._lock:
            self.requests_served += 1
        return encoded

    def handle_raw(self, raw: bytes) -> tuple[bytes, bool]:
        """Handle one request line; returns ``(response line, stop?)``.

        Never raises: protocol violations and handler errors come back as
        ``{"ok": false, "error": ...}`` responses so one bad request cannot
        take the daemon down.  This is begin → dispatch → finish in
        sequence — what both transports run for non-batched requests, and
        what embedding callers (tests, tools) use directly.
        """
        ticket = self.begin(raw)
        response = self.dispatch(ticket)
        return self.finish(ticket, response), ticket.stop

    # ------------------------------------------------------------------
    # Batched dispatch
    # ------------------------------------------------------------------
    def process_batch(
        self, tickets: PySequence[RequestTicket]
    ) -> list[tuple[bytes, bool]]:
        """Dispatch a batch of tickets, amortising one sweep across it.

        ``score`` and ``match`` tickets that share a namespace are answered
        from **one** automaton pass over their concatenated query
        sequences: per-sequence supports are independent (instances never
        span sequences), so slicing the combined
        :class:`~repro.match.automaton.MatchResult` back per request is
        byte-identical to dispatching each request alone.  Anything else in
        the batch — other operations, malformed tickets, unknown
        namespaces — falls through to the ordinary single dispatch.  The
        response cache is consulted per ticket first and filled from the
        shared sweep after.

        Returns ``(response line, stop?)`` per ticket, in ticket order.
        Designed to run on a worker thread; auto-reload runs once per
        namespace per batch, before the namespace's state snapshot.
        """
        if len(tickets) == 1:
            # A batch of one gains nothing from the combined-sweep path;
            # plain dispatch keeps its trace tree (op span → match span)
            # identical to the unbatched transports'.
            ticket = tickets[0]
            response = self.dispatch(ticket)
            if self.obs.enabled:
                self._batch_sizes.observe(1.0)
            return [(self.finish(ticket, response), ticket.stop)]
        responses: list[dict[str, Any] | None] = [None] * len(tickets)
        groups: dict[Any, list[int]] = {}
        for index, ticket in enumerate(tickets):
            if not ticket.batchable:
                responses[index] = self.dispatch(ticket)
                continue
            request = ticket.request
            assert request is not None
            groups.setdefault(request.get("ns"), []).append(index)
        for ns_value, indexes in groups.items():
            self._dispatch_batch_group(tickets, indexes, ns_value, responses)
        if self.obs.enabled:
            self._batch_sizes.observe(float(len(tickets)))
        results: list[tuple[bytes, bool]] = []
        for ticket, response in zip(tickets, responses):
            assert response is not None
            results.append((self.finish(ticket, response), ticket.stop))
        return results

    def _dispatch_batch_group(
        self,
        tickets: PySequence[RequestTicket],
        indexes: list[int],
        ns_value: Any,
        responses: list[dict[str, Any] | None],
    ) -> None:
        """Answer one namespace's batchable tickets (cache, then one sweep)."""
        try:
            namespace = self._namespace(ns_value)
        except ProtocolError as exc:
            for index in indexes:
                responses[index] = error_response(str(exc))
            return
        for index in indexes:
            tickets[index].ns_label = namespace.name
        self._maybe_auto_reload(namespace)
        state = namespace.state
        cache = self._cache
        misses: list[int] = []
        keys: dict[int, tuple[str, int, str, str]] = {}
        for index in indexes:
            ticket = tickets[index]
            request = ticket.request
            assert request is not None
            if cache is not None:
                key = (
                    namespace.name,
                    state.generation,
                    ticket.op_name,
                    canonical_request(request),
                )
                keys[index] = key
                cached = cache.get(key)
                if cached is not None:
                    self._cache_hits.inc()
                    responses[index] = cached
                    continue
                self._cache_misses.inc()
            misses.append(index)
        if not misses:
            return
        # Build each miss's query database; a malformed request drops out
        # of the sweep with its own error response.
        databases: dict[int, SequenceDatabase] = {}
        for index in misses:
            ticket = tickets[index]
            assert ticket.request is not None
            try:
                databases[index] = _query_database(ticket.request)
            except ProtocolError as exc:
                responses[index] = error_response(str(exc))
            except Exception as exc:  # noqa: BLE001 - one bad request must not kill the batch
                responses[index] = error_response(f"{type(exc).__name__}: {exc}")
        swept = [index for index in misses if index in databases]
        if not swept:
            return
        combined = SequenceDatabase(
            [sequence for index in swept for sequence in databases[index]]
        )
        first = tickets[swept[0]]
        token = set_context(first.context) if first.context is not None else None
        try:
            with self.obs.span("serve.batch.sweep.seconds", size=len(swept)):
                result = state.matcher.match(combined)
        except Exception as exc:  # noqa: BLE001 - the daemon must keep serving
            for index in swept:
                responses[index] = error_response(f"{type(exc).__name__}: {exc}")
            return
        finally:
            if token is not None:
                reset_context(token)
        offset = 0
        for index in swept:
            ticket = tickets[index]
            count = len(databases[index])
            if ticket.op_name == "score":
                payload = ok_response(
                    scores=[
                        score_to_wire(score_from_match(result, offset + i))
                        for i in range(1, count + 1)
                    ]
                )
            else:
                payload = ok_response(**match_slice_to_wire(result, offset, count))
            responses[index] = payload
            if cache is not None:
                evicted = cache.put(keys[index], payload)
                if evicted:
                    self._cache_evictions.inc(evicted)
            offset += count

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def _handle_op(
        self, op: Any, request: dict[str, Any], namespace: _Namespace
    ) -> dict[str, Any]:
        """Route one decoded request to its operation, through the cache."""
        state = namespace.state
        cache = self._cache
        if cache is not None and isinstance(op, str) and op in CACHEABLE_OPERATIONS:
            key = (namespace.name, state.generation, op, canonical_request(request))
            cached = cache.get(key)
            if cached is not None:
                self._cache_hits.inc()
                return cached
            self._cache_misses.inc()
            response = self._op_response(op, request, namespace, state)
            if response.get("ok"):
                evicted = cache.put(key, response)
                if evicted:
                    self._cache_evictions.inc(evicted)
            return response
        return self._op_response(op, request, namespace, state)

    def _op_response(
        self,
        op: Any,
        request: dict[str, Any],
        namespace: _Namespace,
        state: _ServingState,
    ) -> dict[str, Any]:
        """One operation's response against a coherent state snapshot."""
        if op == "ping":
            return ok_response(
                patterns=len(state.store),
                algorithm=state.store.algorithm,
                min_sup=state.store.min_sup,
                store_path=str(namespace.path),
                zero_copy=state.store.is_zero_copy,
                reloads=self.reloads,
                automaton_reuses=self.automaton_reuses,
                last_reload_error=self.last_reload_error,
                last_reload_seconds=self.last_reload_seconds,
                uptime_ticks=self.obs.clock() - self._started,
                requests_served=self.requests_served,
                pid=os.getpid(),
            )
        if op == "match":
            result = state.matcher.match(_query_database(request))
            return ok_response(**match_result_to_wire(result))
        if op == "score":
            scores = state.matcher.score_many(list(_query_database(request)))
            return ok_response(scores=[score_to_wire(s) for s in scores])
        if op == "rank":
            ranked = state.matcher.rank_sequences(
                list(_query_database(request)),
                request.get("k"),
                by=request.get("by", "anomaly"),
            )
            return ok_response(ranked=ranked_to_wire(ranked))
        if op == "top_k":
            top = state.matcher.top_patterns(
                _query_database(request),
                request.get("k", 10),
                by=request.get("by", "support"),
            )
            return ok_response(patterns=top_patterns_to_wire(top))
        if op == "reload":
            return ok_response(
                **self._reload_namespace(namespace, force=bool(request.get("force")))
            )
        if op == "namespaces":
            return ok_response(
                namespaces={
                    name: {
                        "patterns": len(self._namespaces[name].state.store),
                        "generation": self._namespaces[name].state.generation,
                        "store_path": str(self._namespaces[name].path),
                        "zero_copy": self._namespaces[name].state.store.is_zero_copy,
                    }
                    for name in self.namespaces
                }
            )
        if op == "stats":
            return ok_response(stats=self.obs.snapshot())
        if op == "trace":
            recorder = self.obs.recorder
            if recorder is None:
                return ok_response(spans=[], dropped=0, total=0, enabled=False)
            limit = request.get("limit")
            spans = recorder.spans(None if limit is None else int(limit))
            return ok_response(
                spans=[span.to_wire() for span in spans],
                dropped=recorder.dropped,
                total=recorder.total,
                enabled=recorder.enabled,
            )
        if op == "shutdown":
            return ok_response(stopping=True)
        raise ProtocolError(
            f"unknown operation {op!r} (expected one of: {', '.join(OPERATIONS)})"
        )

    # ------------------------------------------------------------------
    # Teardown helpers
    # ------------------------------------------------------------------
    def _drain_trace(self) -> None:
        """Append spans recorded since the last drain to the span journal.

        Incremental via the recorder's sequence cursor; the cursor update
        and the append happen under the writer-side lock, so concurrent
        request threads never write a span twice or out of order.
        """
        writer = self._trace_writer
        recorder = self.obs.recorder
        if writer is None or recorder is None:
            return
        with self._trace_lock:
            spans, self._trace_cursor = recorder.since(self._trace_cursor)
            if spans:
                writer.write(spans)

    def _close_core(self) -> None:
        """Flush and close the core's owned resources (the span journal)."""
        if self._trace_writer is not None:
            self._drain_trace()
            self._trace_writer.close()


def _query_database(params: dict[str, Any]) -> SequenceDatabase:
    """Coerce a request's ``sequences`` parameter into a query database.

    Accepts a single string (one sequence of single-character events) or a
    list of sequences, each a string or a list of str/int events — the JSON
    shapes of what :func:`~repro.db.sequence.as_sequence` accepts.
    """
    sequences = params.get("sequences")
    if sequences is None:
        raise ProtocolError("missing required parameter 'sequences'")
    if isinstance(sequences, str):
        sequences = [sequences]
    if not isinstance(sequences, list) or not sequences:
        raise ProtocolError("'sequences' must be a non-empty list (or one string)")
    return SequenceDatabase([as_sequence(seq) for seq in sequences])
