"""A small nearest-centroid classifier over pattern features.

This closes the loop on the paper's future-work suggestion: repetitive
patterns as features, per-sequence supports as feature values, and a simple
classifier on top.  Nearest-centroid is chosen because it is dependency-free
and easy to reason about in tests; the feature matrices produced by
:mod:`repro.analysis.features` also plug directly into scikit-learn style
estimators if available.
"""

from __future__ import annotations

import math
from collections.abc import Hashable, Sequence as PySequence


class NearestCentroidClassifier:
    """Nearest-centroid classification with Euclidean distance.

    Feature rows are plain sequences of numbers (e.g. the rows produced by
    :class:`~repro.analysis.features.PatternFeatureExtractor`).
    """

    def __init__(self):
        self._centroids: dict[Hashable, list[float]] = {}

    # ------------------------------------------------------------------
    # Training / prediction
    # ------------------------------------------------------------------
    def fit(self, rows: PySequence[PySequence[float]], labels: PySequence[Hashable]) -> NearestCentroidClassifier:
        """Compute one centroid per label."""
        if len(rows) != len(labels):
            raise ValueError("rows and labels must have the same length")
        if not rows:
            raise ValueError("cannot fit on an empty training set")
        width = len(rows[0])
        sums: dict[Hashable, list[float]] = {}
        counts: dict[Hashable, int] = {}
        for row, label in zip(rows, labels, strict=False):
            if len(row) != width:
                raise ValueError("all feature rows must have the same length")
            accumulator = sums.setdefault(label, [0.0] * width)
            for i, value in enumerate(row):
                accumulator[i] += float(value)
            counts[label] = counts.get(label, 0) + 1
        self._centroids = {
            label: [value / counts[label] for value in accumulator]
            for label, accumulator in sums.items()
        }
        return self

    def predict_one(self, row: PySequence[float]) -> Hashable:
        """Label of the nearest centroid for one feature row."""
        if not self._centroids:
            raise ValueError("classifier has not been fitted")
        best_label = None
        best_distance = math.inf
        for label, centroid in sorted(self._centroids.items(), key=lambda kv: repr(kv[0])):
            distance = self._distance(row, centroid)
            if distance < best_distance:
                best_distance = distance
                best_label = label
        return best_label

    def predict(self, rows: PySequence[PySequence[float]]) -> list[Hashable]:
        """Labels of the nearest centroids for several feature rows."""
        return [self.predict_one(row) for row in rows]

    def score(self, rows: PySequence[PySequence[float]], labels: PySequence[Hashable]) -> float:
        """Accuracy on a labelled set."""
        if len(rows) != len(labels):
            raise ValueError("rows and labels must have the same length")
        if not rows:
            return 0.0
        correct = sum(1 for row, label in zip(rows, labels, strict=False) if self.predict_one(row) == label)
        return correct / len(rows)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    @property
    def labels(self) -> list[Hashable]:
        """The labels seen during fitting."""
        return sorted(self._centroids.keys(), key=repr)

    @staticmethod
    def _distance(a: PySequence[float], b: PySequence[float]) -> float:
        if len(a) != len(b):
            raise ValueError("feature row width does not match the fitted centroids")
        return math.sqrt(sum((float(x) - float(y)) ** 2 for x, y in zip(a, b, strict=False)))
