"""Analysis helpers built on top of the miners.

Two directions the paper points at beyond the core mining problem:

* **Features for classification** (Section V): the per-sequence repetitive
  support of a pattern is a feature value; patterns that repeat frequently in
  some sequences and rarely in others are discriminative.
  :mod:`repro.analysis.features` extracts those feature vectors and
  :mod:`repro.analysis.classify` provides a small nearest-centroid classifier
  to demonstrate the idea end to end.
* **Semantics comparison** (Table I / Example 1.1):
  :mod:`repro.analysis.comparison` computes the support of a pattern under
  every related-work definition side by side.
"""

from repro.analysis.classify import NearestCentroidClassifier
from repro.analysis.comparison import SupportComparison, compare_supports
from repro.analysis.features import PatternFeatureExtractor, pattern_feature_matrix

__all__ = [
    "PatternFeatureExtractor",
    "pattern_feature_matrix",
    "NearestCentroidClassifier",
    "SupportComparison",
    "compare_supports",
]
