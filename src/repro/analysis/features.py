"""Per-sequence pattern features (the paper's future-work direction).

Section V suggests using frequent repetitive patterns as classification
features, with "their supports in each sequence as feature values".  For a
pattern ``P`` and sequence ``S_i`` the natural feature is the number of
instances of ``P`` in the leftmost support set that live in ``S_i`` — i.e.
the per-sequence share of the repetitive support.

:class:`PatternFeatureExtractor` mines (or accepts) a set of patterns and
turns a database into a feature matrix; plain Python lists are used so the
package has no hard numpy dependency (numpy arrays are accepted and returned
where available).
"""

from __future__ import annotations

from collections.abc import Sequence as PySequence

from repro.core.clogsgrow import mine_closed
from repro.core.pattern import Pattern, as_pattern
from repro.core.results import MiningResult
from repro.core.support import sup_comp
from repro.db.database import SequenceDatabase
from repro.db.index import InvertedEventIndex


class PatternFeatureExtractor:
    """Turns sequences into per-pattern repetitive-support feature vectors.

    Parameters
    ----------
    patterns:
        The patterns to use as features.  If omitted, call :meth:`fit` to
        mine closed patterns from a training database.
    """

    def __init__(self, patterns: PySequence[Pattern | str] | None = None):
        self.patterns: list[Pattern] = [as_pattern(p) for p in patterns] if patterns else []

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(
        self,
        database: SequenceDatabase,
        min_sup: int,
        *,
        max_patterns: int | None = None,
        min_length: int = 1,
    ) -> PatternFeatureExtractor:
        """Mine closed patterns from ``database`` and keep them as features.

        Patterns are ranked by support (then length) and optionally truncated
        to ``max_patterns`` features.
        """
        result: MiningResult = mine_closed(database, min_sup)
        ranked = [p for p in result.sorted_by_support() if len(p.pattern) >= min_length]
        if max_patterns is not None:
            ranked = ranked[:max_patterns]
        self.patterns = [p.pattern for p in ranked]
        return self

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------
    def transform(self, database: SequenceDatabase) -> list[list[int]]:
        """Feature matrix: one row per sequence, one column per pattern.

        Entry ``[i][j]`` is the number of instances of pattern ``j`` in the
        leftmost support set restricted to sequence ``i + 1``.
        """
        if not self.patterns:
            raise ValueError("no patterns configured; call fit() or pass patterns explicitly")
        index = InvertedEventIndex(database)
        matrix = [[0] * len(self.patterns) for _ in range(len(database))]
        for j, pattern in enumerate(self.patterns):
            support_set = sup_comp(index, pattern)
            for seq_index, count in support_set.per_sequence_counts().items():
                matrix[seq_index - 1][j] = count
        return matrix

    def fit_transform(self, database: SequenceDatabase, min_sup: int, **kwargs) -> list[list[int]]:
        """Convenience: :meth:`fit` then :meth:`transform` on the same database."""
        return self.fit(database, min_sup, **kwargs).transform(database)

    def feature_names(self) -> list[str]:
        """String names of the features (the patterns, rendered compactly)."""
        return [str(p) for p in self.patterns]


def pattern_feature_matrix(
    database: SequenceDatabase,
    patterns: PySequence[Pattern | str],
) -> list[list[int]]:
    """One-call feature extraction for a fixed pattern list."""
    return PatternFeatureExtractor(patterns).transform(database)


def discriminative_patterns(
    positive: SequenceDatabase,
    negative: SequenceDatabase,
    min_sup: int,
    *,
    top_k: int = 10,
) -> list[dict]:
    """Patterns whose average per-sequence support differs most between classes.

    A small realisation of the paper's future-work idea: mine closed patterns
    from the union, compute average per-sequence support in each class, and
    rank by the absolute difference.
    """
    union = SequenceDatabase(list(positive) + list(negative), name="union")
    boundary = len(positive)
    result = mine_closed(union, min_sup)
    index = InvertedEventIndex(union)
    scored: list[dict] = []
    for entry in result:
        support_set = sup_comp(index, entry.pattern)
        counts = support_set.per_sequence_counts()
        pos_total = sum(c for i, c in counts.items() if i <= boundary)
        neg_total = sum(c for i, c in counts.items() if i > boundary)
        pos_avg = pos_total / max(len(positive), 1)
        neg_avg = neg_total / max(len(negative), 1)
        scored.append(
            {
                "pattern": entry.pattern,
                "support": entry.support,
                "positive_average": pos_avg,
                "negative_average": neg_avg,
                "score": abs(pos_avg - neg_avg),
            }
        )
    scored.sort(key=lambda d: (-d["score"], str(d["pattern"])))
    return scored[:top_k]
