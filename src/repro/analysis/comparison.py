"""Side-by-side comparison of the support semantics of Table I.

Given a database and a pattern, :func:`compare_supports` evaluates every
support definition discussed in the paper's related-work section — sequential
(sequence count), fixed-width-window and minimal-window episodes, gap
requirement occurrences, interaction patterns, iterative patterns — together
with the paper's own repetitive support.  The Table I experiment and the
quickstart example both use it.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence as PySequence

from repro.baselines.episodes import fixed_window_support, minimal_window_support
from repro.baselines.gap_requirement import gap_occurrence_support
from repro.baselines.interaction import interaction_support
from repro.baselines.iterative import iterative_support
from repro.baselines.sequential import sequence_support
from repro.core.constraints import GapConstraint
from repro.core.pattern import Pattern, as_pattern
from repro.core.support import repetitive_support
from repro.db.database import SequenceDatabase


@dataclass(frozen=True)
class SupportComparison:
    """Supports of one pattern under every semantics of Table I."""

    pattern: Pattern
    repetitive: int
    sequential: int
    episode_fixed_window: int
    episode_minimal_window: int
    gap_requirement: int
    interaction: int
    iterative: int
    window_width: int
    gap_constraint: GapConstraint

    def as_dict(self) -> dict[str, int]:
        """The supports keyed by semantics name (scalars only)."""
        return {
            "repetitive (this paper)": self.repetitive,
            "sequential (Agrawal & Srikant)": self.sequential,
            f"episode, width-{self.window_width} windows (Mannila et al.)": self.episode_fixed_window,
            "episode, minimal windows (Mannila et al.)": self.episode_minimal_window,
            f"gap requirement, {self.gap_constraint.describe()} (Zhang et al.)": self.gap_requirement,
            "interaction patterns (El-Ramly et al.)": self.interaction,
            "iterative patterns (Lo et al.)": self.iterative,
        }

    def rows(self):
        """``(semantics, support)`` rows for tabular rendering."""
        return list(self.as_dict().items())


def compare_supports(
    database: SequenceDatabase,
    pattern: Pattern | str | PySequence,
    *,
    window_width: int = 4,
    gap_constraint: GapConstraint | None = None,
) -> SupportComparison:
    """Evaluate every Table I semantics for ``pattern`` on ``database``.

    Default parameters (window width 4, gap in [0, 3]) are the ones used in
    the paper's Example 1.1 discussion.
    """
    pattern = as_pattern(pattern)
    gap_constraint = gap_constraint or GapConstraint(0, 3)
    return SupportComparison(
        pattern=pattern,
        repetitive=repetitive_support(database, pattern),
        sequential=sequence_support(database, pattern),
        episode_fixed_window=fixed_window_support(database, pattern, window_width),
        episode_minimal_window=minimal_window_support(database, pattern),
        gap_requirement=gap_occurrence_support(database, pattern, gap_constraint),
        interaction=interaction_support(database, pattern),
        iterative=iterative_support(database, pattern),
        window_width=window_width,
        gap_constraint=gap_constraint,
    )
