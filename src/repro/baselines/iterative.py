"""Iterative-pattern support (Lo, Khoo & Liu, KDD 2007).

Iterative patterns follow the Message Sequence Chart / Live Sequence Chart
semantics: an occurrence of pattern ``e1 e2 ... en`` is a substring matching
the quantified regular expression ``e1 G* e2 G* ... G* en`` where ``G`` is
the set of all events *except* ``{e1, ..., en}`` — i.e. between two
consecutive pattern events no event of the pattern's own alphabet may
appear.  All such occurrences (within and across sequences) are counted.

In Example 1.1 pattern ``AB`` has support 3: two occurrences in
``S1 = AABCDABB`` (the ``A`` at position 2 with the ``B`` at position 3, and
the ``A`` at position 6 with the ``B`` at position 7) and one in ``S2``.
"""

from __future__ import annotations

from collections.abc import Sequence as PySequence

from repro.core.pattern import Pattern, as_pattern
from repro.db.database import SequenceDatabase
from repro.db.sequence import Sequence


def iterative_occurrences_sequence(
    sequence: Sequence, pattern: Pattern | str | PySequence
) -> list[tuple[int, ...]]:
    """All landmarks realising the MSC/LSC semantics in ``sequence``.

    A landmark qualifies iff between consecutive landmark positions no event
    belonging to the pattern's alphabet occurs.
    """
    pattern = as_pattern(pattern)
    if pattern.is_empty():
        return []
    alphabet = pattern.distinct_events()
    events = sequence.events
    occurrences: list[tuple[int, ...]] = []

    def extend(prefix: tuple[int, ...], j: int) -> None:
        if j > len(pattern):
            occurrences.append(prefix)
            return
        start = prefix[-1] + 1 if prefix else 1
        for pos in range(start, len(events) + 1):
            event = events[pos - 1]
            if event == pattern.at(j):
                extend(prefix + (pos,), j + 1)
            if prefix and event in alphabet:
                # An event of the pattern's own alphabet closes the gap: no
                # later position can continue this particular prefix.
                break

    extend((), 1)
    return occurrences


def iterative_support_sequence(
    sequence: Sequence, pattern: Pattern | str | PySequence
) -> int:
    """Number of MSC/LSC occurrences of ``pattern`` in ``sequence``."""
    return len(iterative_occurrences_sequence(sequence, pattern))


def iterative_support(
    database: SequenceDatabase, pattern: Pattern | str | PySequence
) -> int:
    """Total iterative-pattern support of ``pattern`` over the database."""
    return sum(iterative_support_sequence(seq, pattern) for seq in database)
