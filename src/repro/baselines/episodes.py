"""Episode support (Mannila, Toivonen & Verkamo, DMKD 1997).

Episode mining works on a *single* long sequence and counts, for a serial
episode (an ordered list of events), either

* the number of **fixed-width windows** — length-``w`` contiguous windows of
  the sequence that contain the episode as a subsequence — or
* the number of **minimal windows** (minimal occurrences) — windows that
  contain the episode but no proper sub-window of which does.

Both definitions capture occurrences as substrings that may overlap, which
is exactly the contrast the paper draws in its related-work discussion
(Example 1.1: serial episode ``AB`` has fixed-width-4 support 4 and
minimal-window support 2 in ``S1 = AABCDABB``).

The database-level helpers sum the per-sequence counts so the Table I
experiment can report one number per semantics.
"""

from __future__ import annotations

from collections.abc import Sequence as PySequence

from repro.core.pattern import Pattern, as_pattern
from repro.db.database import SequenceDatabase
from repro.db.sequence import Sequence


def _contains_subsequence(events: PySequence, pattern: Pattern) -> bool:
    it = iter(events)
    return all(any(e == p for e in it) for p in pattern)


def fixed_window_support_sequence(
    sequence: Sequence, pattern: Pattern | str | PySequence, width: int
) -> int:
    """Number of width-``width`` windows of ``sequence`` containing ``pattern``.

    Windows are the contiguous stretches ``[t, t + width - 1]`` fully inside
    the sequence (``1 <= t <= len(S) - width + 1``), matching the counts in
    the paper's Example 1.1.
    """
    pattern = as_pattern(pattern)
    if width < 1:
        raise ValueError("window width must be >= 1")
    events = sequence.events
    count = 0
    for start in range(0, max(len(events) - width + 1, 0)):
        if _contains_subsequence(events[start : start + width], pattern):
            count += 1
    return count


def fixed_window_support(
    database: SequenceDatabase, pattern: Pattern | str | PySequence, width: int
) -> int:
    """Sum of fixed-width-window supports over all sequences of ``database``."""
    return sum(fixed_window_support_sequence(seq, pattern, width) for seq in database)


def minimal_windows_sequence(
    sequence: Sequence, pattern: Pattern | str | PySequence
) -> list[tuple[int, int]]:
    """All minimal windows (1-based, inclusive bounds) of ``pattern`` in ``sequence``.

    A window ``[s, t]`` is minimal if the events ``S[s..t]`` contain the
    pattern as a subsequence but neither ``[s+1, t]`` nor ``[s, t-1]`` does.
    """
    pattern = as_pattern(pattern)
    if pattern.is_empty():
        return []
    events = sequence.events
    windows: list[tuple[int, int]] = []
    n = len(events)
    for end in range(1, n + 1):
        if events[end - 1] != pattern.at(len(pattern)):
            continue
        # Find the largest start such that S[start..end] still contains the
        # pattern: match the pattern greedily from the right end inward.
        j = len(pattern)
        pos = end
        ok = True
        while j >= 1:
            while pos >= 1 and events[pos - 1] != pattern.at(j):
                pos -= 1
            if pos < 1:
                ok = False
                break
            j -= 1
            pos -= 1
        if not ok:
            continue
        start = pos + 1
        # Minimal iff [start+1, end] no longer contains the pattern, which the
        # rightmost-match construction guarantees; also require that the
        # previous recorded window is not nested inside this one.
        if windows and windows[-1][0] >= start:
            continue
        windows.append((start, end))
    return windows


def minimal_window_support_sequence(
    sequence: Sequence, pattern: Pattern | str | PySequence
) -> int:
    """Number of minimal windows of ``pattern`` in ``sequence``."""
    return len(minimal_windows_sequence(sequence, pattern))


def minimal_window_support(
    database: SequenceDatabase, pattern: Pattern | str | PySequence
) -> int:
    """Sum of minimal-window supports over all sequences of ``database``."""
    return sum(minimal_window_support_sequence(seq, pattern) for seq in database)
