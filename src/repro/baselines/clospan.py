"""CloSpan-style closed sequential pattern mining (Yan, Han & Afshar, SDM 2003).

CloSpan mines closed sequential patterns in two phases: a PrefixSpan-style
search that prunes DFS branches whose projected databases are *equivalent*
to one already explored (detected by hashing the total remaining suffix
length), followed by a post-processing pass that eliminates the non-closed
patterns from the candidate set.

This implementation keeps that two-phase structure:

* the search phase uses the projected-database-size hash to stop growing a
  prefix whose projection coincides with that of an already seen pattern that
  is a super- or sub-pattern with the same support (backward/forward
  sub-pattern pruning);
* the elimination phase removes every candidate that has an equal-support
  super-pattern among the candidates.

The pattern set returned equals the closed sequential patterns (the
elimination phase is exhaustive), which is what both the runtime-comparison
benchmark and the correctness tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pattern import Pattern
from repro.core.results import MinedPattern, MiningResult
from repro.db.database import SequenceDatabase
from repro.db.sequence import Event

#: Pseudo projection: list of (sequence index, suffix start offset).
Projection = list[tuple[int, int]]


@dataclass
class CloSpanConfig:
    """Configuration of :class:`CloSpan`."""

    min_sup: int = 2
    max_length: int | None = None

    def __post_init__(self):
        if self.min_sup < 1:
            raise ValueError(f"min_sup must be >= 1, got {self.min_sup}")


class CloSpan:
    """CloSpan-style closed sequential-pattern miner (sequence-count support)."""

    algorithm_name = "CloSpan"

    def __init__(self, min_sup: int = 2, max_length: int | None = None):
        self.config = CloSpanConfig(min_sup=min_sup, max_length=max_length)
        self.nodes_visited = 0
        self.nodes_pruned_equivalence = 0

    def mine(self, database: SequenceDatabase) -> MiningResult:
        """Mine all closed frequent sequential patterns of ``database``."""
        self.nodes_visited = 0
        self.nodes_pruned_equivalence = 0
        events = [list(seq.events) for seq in database]
        candidates: dict[Pattern, int] = {}
        # Map projection signature -> (pattern, support) for equivalence pruning.
        seen_projections: dict[tuple[int, int], tuple[Pattern, int]] = {}
        projection: Projection = [(i, 0) for i in range(len(events))]
        self._grow(Pattern(()), projection, events, candidates, seen_projections)
        closed = self._eliminate_non_closed(candidates)
        result = MiningResult(min_sup=self.config.min_sup, algorithm=self.algorithm_name)
        for pattern, support in sorted(closed.items(), key=lambda kv: kv[0]):
            result.add(MinedPattern(pattern=pattern, support=support))
        return result

    # ------------------------------------------------------------------
    # Phase 1: pruned PrefixSpan search
    # ------------------------------------------------------------------
    def _grow(
        self,
        prefix: Pattern,
        projection: Projection,
        events: list[list[Event]],
        candidates: dict[Pattern, int],
        seen_projections: dict[tuple[int, int], tuple[Pattern, int]],
    ) -> None:
        self.nodes_visited += 1
        if self.config.max_length is not None and len(prefix) >= self.config.max_length:
            return
        local_counts = self._local_event_counts(projection, events)
        for event, count in sorted(local_counts.items(), key=lambda kv: repr(kv[0])):
            if count < self.config.min_sup:
                continue
            grown = prefix.grow(event)
            candidates[grown] = count
            child_projection = self._project(projection, events, event)
            signature = self._projection_signature(child_projection, events)
            previous = seen_projections.get(signature)
            if previous is not None:
                previous_pattern, previous_support = previous
                if previous_support == count and grown.is_proper_subpattern_of(previous_pattern):
                    # Backward sub-pattern case: the projected database of
                    # `grown` coincides with that of an already explored
                    # super-pattern, so every descendant of `grown` has an
                    # equal-support super-pattern in that subtree and cannot
                    # be closed.  (The backward super-pattern case is not
                    # pruned here; correctness over pruning power.)
                    self.nodes_pruned_equivalence += 1
                    continue
            seen_projections[signature] = (grown, count)
            self._grow(grown, child_projection, events, candidates, seen_projections)

    @staticmethod
    def _local_event_counts(projection: Projection, events: list[list[Event]]) -> dict[Event, int]:
        counts: dict[Event, int] = {}
        for seq_idx, offset in projection:
            for event in set(events[seq_idx][offset:]):
                counts[event] = counts.get(event, 0) + 1
        return counts

    @staticmethod
    def _project(projection: Projection, events: list[list[Event]], event: Event) -> Projection:
        projected: Projection = []
        for seq_idx, offset in projection:
            seq = events[seq_idx]
            for pos in range(offset, len(seq)):
                if seq[pos] == event:
                    projected.append((seq_idx, pos + 1))
                    break
        return projected

    @staticmethod
    def _projection_signature(projection: Projection, events: list[list[Event]]) -> tuple[int, int]:
        """CloSpan's equivalence hash: (#sequences, total remaining suffix length)."""
        total_remaining = sum(len(events[seq_idx]) - offset for seq_idx, offset in projection)
        return (len(projection), total_remaining)

    # ------------------------------------------------------------------
    # Phase 2: non-closed elimination
    # ------------------------------------------------------------------
    @staticmethod
    def _eliminate_non_closed(candidates: dict[Pattern, int]) -> dict[Pattern, int]:
        by_support: dict[int, list[Pattern]] = {}
        for pattern, support in candidates.items():
            by_support.setdefault(support, []).append(pattern)
        closed: dict[Pattern, int] = {}
        for pattern, support in candidates.items():
            peers = by_support[support]
            if any(pattern.is_proper_subpattern_of(other) for other in peers):
                continue
            closed[pattern] = support
        return closed
