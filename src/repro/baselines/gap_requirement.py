"""Gap-requirement occurrence counting (Zhang, Kao, Cheung & Yip, SIGMOD 2005).

In periodic-pattern mining with a *gap requirement*, every occurrence
(landmark) of the pattern whose consecutive positions satisfy
``min_gap <= gap <= max_gap`` is counted — overlapping and non-overlapping
alike — and the support is normalised by ``N_l``, the number of position
tuples that satisfy the gap requirement irrespective of the events at those
positions.

Example 1.1 of the paper: with the requirement "gap >= 0 and <= 3", pattern
``AB`` has 4 occurrences in ``S1 = AABCDABB`` and support ratio ``4 / 22``
(22 is the number of position pairs at distance 1..4 in a length-8 sequence).
"""

from __future__ import annotations

from collections.abc import Sequence as PySequence

from repro.core.constraints import GapConstraint
from repro.core.pattern import Pattern, as_pattern
from repro.core.reference import enumerate_landmarks
from repro.db.database import SequenceDatabase
from repro.db.sequence import Sequence


def gap_occurrences_sequence(
    sequence: Sequence,
    pattern: Pattern | str | PySequence,
    constraint: GapConstraint,
) -> list[tuple[int, ...]]:
    """All landmarks of ``pattern`` in ``sequence`` satisfying ``constraint``."""
    return enumerate_landmarks(sequence, as_pattern(pattern), constraint=constraint)


def gap_occurrence_support_sequence(
    sequence: Sequence,
    pattern: Pattern | str | PySequence,
    constraint: GapConstraint,
) -> int:
    """Number of constraint-satisfying occurrences of ``pattern`` in ``sequence``."""
    return len(gap_occurrences_sequence(sequence, pattern, constraint))


def gap_occurrence_support(
    database: SequenceDatabase,
    pattern: Pattern | str | PySequence,
    constraint: GapConstraint,
) -> int:
    """Total number of constraint-satisfying occurrences over the database."""
    return sum(
        gap_occurrence_support_sequence(seq, pattern, constraint) for seq in database
    )


def max_possible_occurrences(sequence_length: int, pattern_length: int, constraint: GapConstraint) -> int:
    """``N_l``: number of position tuples satisfying the gap requirement.

    Counts strictly increasing tuples ``l1 < ... < lm`` within
    ``1..sequence_length`` whose consecutive differences satisfy the
    constraint, regardless of the events at those positions.  Computed by a
    simple dynamic program over ending positions.
    """
    if pattern_length < 1:
        return 0
    if pattern_length == 1:
        return sequence_length
    # ways[j][p] = number of valid length-j tuples ending at position p.
    previous = [1] * (sequence_length + 1)  # length-1 tuples ending at p (index 0 unused)
    previous[0] = 0
    for _ in range(2, pattern_length + 1):
        current = [0] * (sequence_length + 1)
        for p in range(1, sequence_length + 1):
            low = p - 1 - (constraint.max_gap if constraint.max_gap is not None else p - 1)
            high = p - 1 - constraint.min_gap
            low = max(low, 1)
            for q in range(low, high + 1):
                current[p] += previous[q]
        previous = current
    return sum(previous)


def gap_support_ratio_sequence(
    sequence: Sequence,
    pattern: Pattern | str | PySequence,
    constraint: GapConstraint,
) -> float:
    """Support ratio (occurrences / ``N_l``) of ``pattern`` in one sequence."""
    pattern = as_pattern(pattern)
    denominator = max_possible_occurrences(len(sequence), len(pattern), constraint)
    if denominator == 0:
        return 0.0
    return gap_occurrence_support_sequence(sequence, pattern, constraint) / denominator


def gap_support_ratio(
    database: SequenceDatabase,
    pattern: Pattern | str | PySequence,
    constraint: GapConstraint,
) -> float:
    """Database-level support ratio: total occurrences over total ``N_l``."""
    pattern = as_pattern(pattern)
    numerator = gap_occurrence_support(database, pattern, constraint)
    denominator = sum(
        max_possible_occurrences(len(seq), len(pattern), constraint) for seq in database
    )
    if denominator == 0:
        return 0.0
    return numerator / denominator
