"""PrefixSpan (Pei et al., ICDE 2001) over single-event sequences.

PrefixSpan mines frequent sequential patterns (sequence-count support) by
recursively projecting the database on the current prefix: for every sequence
containing the prefix, keep the suffix after the prefix's first (leftmost)
occurrence; events frequent in the projected database extend the prefix.

This is the projected-database style of pattern growth the paper contrasts
its instance-growth operation with, and one of the miners used in the
Experiment-1 runtime comparison.  The implementation uses pseudo-projection
(sequence id + suffix start offset) rather than copying suffixes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pattern import Pattern
from repro.core.results import MinedPattern, MiningResult
from repro.db.database import SequenceDatabase
from repro.db.sequence import Event


#: A pseudo-projected database: list of (sequence index, suffix start offset).
Projection = list[tuple[int, int]]


@dataclass
class PrefixSpanConfig:
    """Configuration of :class:`PrefixSpan`."""

    min_sup: int = 2
    max_length: int | None = None

    def __post_init__(self):
        if self.min_sup < 1:
            raise ValueError(f"min_sup must be >= 1, got {self.min_sup}")


class PrefixSpan:
    """The PrefixSpan sequential-pattern miner.

    Supports are *sequence counts* (a pattern is counted once per sequence
    containing it), matching the original algorithm and the first row of
    Table I.
    """

    algorithm_name = "PrefixSpan"

    def __init__(self, min_sup: int = 2, max_length: int | None = None):
        self.config = PrefixSpanConfig(min_sup=min_sup, max_length=max_length)
        self.nodes_visited = 0

    def mine(self, database: SequenceDatabase) -> MiningResult:
        """Mine all frequent sequential patterns of ``database``."""
        self.nodes_visited = 0
        result = MiningResult(min_sup=self.config.min_sup, algorithm=self.algorithm_name)
        events = [list(seq.events) for seq in database]
        # The initial projection is every sequence starting at offset 0.
        projection: Projection = [(i, 0) for i in range(len(events))]
        self._grow(Pattern(()), projection, events, result)
        return result

    # ------------------------------------------------------------------
    # Recursion
    # ------------------------------------------------------------------
    def _grow(
        self,
        prefix: Pattern,
        projection: Projection,
        events: list[list[Event]],
        result: MiningResult,
    ) -> None:
        self.nodes_visited += 1
        if self.config.max_length is not None and len(prefix) >= self.config.max_length:
            return
        local_counts = self._local_event_counts(projection, events)
        for event, count in sorted(local_counts.items(), key=lambda kv: repr(kv[0])):
            if count < self.config.min_sup:
                continue
            grown = prefix.grow(event)
            result.add(MinedPattern(pattern=grown, support=count))
            self._grow(grown, self._project(projection, events, event), events, result)

    @staticmethod
    def _local_event_counts(projection: Projection, events: list[list[Event]]) -> dict[Event, int]:
        """Sequence counts of events occurring in the projected suffixes."""
        counts: dict[Event, int] = {}
        for seq_idx, offset in projection:
            for event in set(events[seq_idx][offset:]):
                counts[event] = counts.get(event, 0) + 1
        return counts

    @staticmethod
    def _project(projection: Projection, events: list[list[Event]], event: Event) -> Projection:
        """Project on ``event``: keep the suffix after its first occurrence."""
        projected: Projection = []
        for seq_idx, offset in projection:
            seq = events[seq_idx]
            for pos in range(offset, len(seq)):
                if seq[pos] == event:
                    projected.append((seq_idx, pos + 1))
                    break
        return projected


def mine_sequential(database: SequenceDatabase, min_sup: int, **kwargs) -> MiningResult:
    """Mine all frequent sequential patterns with PrefixSpan (functional façade)."""
    return PrefixSpan(min_sup, **kwargs).mine(database)
