"""SPAM (Ayres et al., KDD 2002): sequential pattern mining with bitmaps.

SPAM mines the same sequence-count frequent patterns as PrefixSpan but
represents, for every pattern, the set of positions at which the pattern's
*last* event can end as one bitmap per sequence (implemented here as Python
integers used as bit sets).  Growing a pattern by an event is then two bit
operations:

* an *S-step transform*: set every bit strictly after the first set bit of
  the current bitmap (all positions where the next event may appear), and
* an AND with the event's own occurrence bitmap.

A sequence supports the grown pattern iff its resulting bitmap is non-zero.
The miner is included both as the third classic comparator mentioned in the
paper's related-work section and as an independent implementation to
cross-check PrefixSpan in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pattern import Pattern
from repro.core.results import MinedPattern, MiningResult
from repro.db.database import SequenceDatabase
from repro.db.sequence import Event


@dataclass
class SPAMConfig:
    """Configuration of :class:`SPAM`."""

    min_sup: int = 2
    max_length: int | None = None

    def __post_init__(self):
        if self.min_sup < 1:
            raise ValueError(f"min_sup must be >= 1, got {self.min_sup}")


class SPAM:
    """Bitmap-based sequential pattern miner (sequence-count support)."""

    algorithm_name = "SPAM"

    def __init__(self, min_sup: int = 2, max_length: int | None = None):
        self.config = SPAMConfig(min_sup=min_sup, max_length=max_length)
        self.nodes_visited = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def mine(self, database: SequenceDatabase) -> MiningResult:
        """Mine all frequent sequential patterns of ``database``."""
        self.nodes_visited = 0
        result = MiningResult(min_sup=self.config.min_sup, algorithm=self.algorithm_name)
        self._lengths = [len(seq) for seq in database]
        self._event_bitmaps = self._build_event_bitmaps(database)
        frequent_events = [
            event
            for event, bitmaps in sorted(self._event_bitmaps.items(), key=lambda kv: repr(kv[0]))
            if self._support(bitmaps) >= self.config.min_sup
        ]
        for event in frequent_events:
            bitmaps = self._event_bitmaps[event]
            self._grow(Pattern((event,)), bitmaps, frequent_events, result)
        return result

    # ------------------------------------------------------------------
    # Recursion
    # ------------------------------------------------------------------
    def _grow(
        self,
        pattern: Pattern,
        bitmaps: list[int],
        frequent_events: list[Event],
        result: MiningResult,
    ) -> None:
        self.nodes_visited += 1
        support = self._support(bitmaps)
        result.add(MinedPattern(pattern=pattern, support=support))
        if self.config.max_length is not None and len(pattern) >= self.config.max_length:
            return
        transformed = [self._s_step(bitmap, length) for bitmap, length in zip(bitmaps, self._lengths, strict=False)]
        for event in frequent_events:
            grown_bitmaps = [
                transformed[i] & self._event_bitmaps[event][i] for i in range(len(transformed))
            ]
            if self._support(grown_bitmaps) >= self.config.min_sup:
                self._grow(pattern.grow(event), grown_bitmaps, frequent_events, result)

    # ------------------------------------------------------------------
    # Bitmap machinery
    # ------------------------------------------------------------------
    @staticmethod
    def _build_event_bitmaps(database: SequenceDatabase) -> dict[Event, list[int]]:
        """One bit set per occurrence position (bit ``p-1`` for position ``p``)."""
        bitmaps: dict[Event, list[int]] = {}
        size = len(database)
        for index, seq in enumerate(database):
            for position, event in enumerate(seq.events):
                per_sequence = bitmaps.setdefault(event, [0] * size)
                per_sequence[index] |= 1 << position
        return bitmaps

    @staticmethod
    def _s_step(bitmap: int, length: int) -> int:
        """Set every bit strictly after the first set bit of ``bitmap``."""
        if bitmap == 0:
            return 0
        first = (bitmap & -bitmap).bit_length() - 1  # index of lowest set bit
        full = (1 << length) - 1
        return full & ~((1 << (first + 1)) - 1)

    @staticmethod
    def _support(bitmaps: list[int]) -> int:
        """Number of sequences whose bitmap is non-empty."""
        return sum(1 for bitmap in bitmaps if bitmap)


def mine_sequential_spam(database: SequenceDatabase, min_sup: int, **kwargs) -> MiningResult:
    """Mine all frequent sequential patterns with SPAM (functional façade)."""
    return SPAM(min_sup, **kwargs).mine(database)
