"""Related-work baselines (Table I of the paper).

Each module implements the support semantics of one line of Table I, so the
paper's comparison of definitions (Example 1.1 and the related-work section)
can be regenerated, plus the three classic sequential-pattern miners used in
the Experiment-1 runtime comparison:

* :mod:`repro.baselines.sequential` — sequence-count support
  (Agrawal & Srikant) and an Apriori-style miner.
* :mod:`repro.baselines.prefixspan` — the PrefixSpan miner (Pei et al.).
* :mod:`repro.baselines.spam` — the SPAM bitmap miner (Ayres et al.).
* :mod:`repro.baselines.clospan` — CloSpan-style closed sequential mining.
* :mod:`repro.baselines.bide` — the BIDE closed sequential miner
  (Wang & Han) with BI-Directional Extension checking and BackScan pruning.
* :mod:`repro.baselines.episodes` — episode support over fixed-width and
  minimal windows (Mannila et al.).
* :mod:`repro.baselines.gap_requirement` — all-occurrence counting under a
  gap requirement (Zhang et al.).
* :mod:`repro.baselines.interaction` — interaction-pattern support
  (El-Ramly et al.).
* :mod:`repro.baselines.iterative` — iterative-pattern (MSC/LSC) support
  (Lo et al.).
"""

from repro.baselines.bide import BIDE, mine_closed_sequential
from repro.baselines.clospan import CloSpan
from repro.baselines.episodes import fixed_window_support, minimal_window_support
from repro.baselines.gap_requirement import gap_occurrence_support, gap_support_ratio
from repro.baselines.interaction import interaction_support
from repro.baselines.iterative import iterative_support
from repro.baselines.prefixspan import PrefixSpan, mine_sequential
from repro.baselines.sequential import sequence_support
from repro.baselines.spam import SPAM, mine_sequential_spam

__all__ = [
    "sequence_support",
    "PrefixSpan",
    "mine_sequential",
    "SPAM",
    "mine_sequential_spam",
    "CloSpan",
    "BIDE",
    "mine_closed_sequential",
    "fixed_window_support",
    "minimal_window_support",
    "gap_occurrence_support",
    "gap_support_ratio",
    "interaction_support",
    "iterative_support",
]
