"""BIDE (Wang & Han, ICDE 2004): closed sequential pattern mining.

BIDE mines *closed* sequential patterns (sequence-count support) without
keeping previously mined patterns.  For a prefix pattern ``P`` it examines,
in every sequence containing ``P``:

* the **forward extension** events — events occurring after the end of the
  first (leftmost) instance of ``P``; if some event occurs in the projected
  suffix of *every* supporting sequence, ``P`` has a forward extension with
  equal support and is not closed;
* the **backward extension** events — events occurring inside the *i-th
  maximum period* (the stretch between the end of the first instance of
  ``e1..e(i-1)`` and the *last-in-last* appearance of ``e_i``) of every
  supporting sequence; such an event can be inserted before ``e_i`` without
  losing any supporting sequence, so ``P`` is again not closed;
* the **BackScan pruning** check — the same scan over *semi-maximum periods*
  (which end at the first instance's own positions); if it fires, no closed
  pattern has ``P`` as prefix and the DFS subtree is skipped.

The miner is used in the Experiment-1 runtime comparison and doubles as a
reference implementation of sequence-count closedness for the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pattern import Pattern
from repro.core.results import MinedPattern, MiningResult
from repro.db.database import SequenceDatabase
from repro.db.sequence import Event


@dataclass
class BIDEConfig:
    """Configuration of :class:`BIDE`."""

    min_sup: int = 2
    max_length: int | None = None
    enable_backscan: bool = True

    def __post_init__(self):
        if self.min_sup < 1:
            raise ValueError(f"min_sup must be >= 1, got {self.min_sup}")


class BIDE:
    """The BIDE closed sequential-pattern miner (sequence-count support)."""

    algorithm_name = "BIDE"

    def __init__(self, min_sup: int = 2, max_length: int | None = None, *, enable_backscan: bool = True):
        self.config = BIDEConfig(min_sup=min_sup, max_length=max_length, enable_backscan=enable_backscan)
        self.nodes_visited = 0
        self.nodes_pruned_backscan = 0

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def mine(self, database: SequenceDatabase) -> MiningResult:
        """Mine all closed frequent sequential patterns of ``database``."""
        self.nodes_visited = 0
        self.nodes_pruned_backscan = 0
        result = MiningResult(min_sup=self.config.min_sup, algorithm=self.algorithm_name)
        self._events: list[list[Event]] = [list(seq.events) for seq in database]
        counts = self._global_event_sequence_counts()
        frequent_events = [e for e, c in sorted(counts.items(), key=lambda kv: repr(kv[0])) if c >= self.config.min_sup]
        for event in frequent_events:
            self._grow(Pattern((event,)), frequent_events, result)
        return result

    # ------------------------------------------------------------------
    # DFS
    # ------------------------------------------------------------------
    def _grow(self, pattern: Pattern, frequent_events: list[Event], result: MiningResult) -> None:
        self.nodes_visited += 1
        supporting = self._supporting_sequences(pattern)
        support = len(supporting)
        if support < self.config.min_sup:
            return
        backward_events, backscan_fires = self._backward_scan(pattern, supporting)
        forward_counts = self._forward_event_counts(pattern, supporting)
        has_forward_extension = any(c == support for c in forward_counts.values())
        if not backward_events and not has_forward_extension:
            result.add(MinedPattern(pattern=pattern, support=support))
        if self.config.enable_backscan and backscan_fires:
            self.nodes_pruned_backscan += 1
            return
        if self.config.max_length is not None and len(pattern) >= self.config.max_length:
            return
        for event, count in sorted(forward_counts.items(), key=lambda kv: repr(kv[0])):
            if count >= self.config.min_sup:
                self._grow(pattern.grow(event), frequent_events, result)

    # ------------------------------------------------------------------
    # Occurrence machinery
    # ------------------------------------------------------------------
    def _global_event_sequence_counts(self) -> dict[Event, int]:
        counts: dict[Event, int] = {}
        for seq in self._events:
            for event in set(seq):
                counts[event] = counts.get(event, 0) + 1
        return counts

    def _supporting_sequences(self, pattern: Pattern) -> list[int]:
        """0-based indices of sequences containing ``pattern``."""
        supporting = []
        for idx, seq in enumerate(self._events):
            if self._first_instance(seq, pattern) is not None:
                supporting.append(idx)
        return supporting

    @staticmethod
    def _first_instance(seq: list[Event], pattern: Pattern) -> list[int] | None:
        """Leftmost occurrence (0-based positions) of ``pattern`` in ``seq``."""
        positions: list[int] = []
        start = 0
        for event in pattern:
            found = None
            for pos in range(start, len(seq)):
                if seq[pos] == event:
                    found = pos
                    break
            if found is None:
                return None
            positions.append(found)
            start = found + 1
        return positions

    @staticmethod
    def _last_in_last(seq: list[Event], pattern: Pattern) -> list[int] | None:
        """The last-in-last appearance positions (0-based) of each pattern event."""
        positions: list[int | None] = [None] * len(pattern)
        end = len(seq)
        for j in range(len(pattern) - 1, -1, -1):
            event = pattern.at(j + 1)
            found = None
            for pos in range(end - 1, -1, -1):
                if seq[pos] == event:
                    found = pos
                    break
            if found is None:
                return None
            positions[j] = found
            end = found
        return [p for p in positions if p is not None]

    def _forward_event_counts(self, pattern: Pattern, supporting: list[int]) -> dict[Event, int]:
        """Sequence counts of events occurring after the first instance of ``pattern``."""
        counts: dict[Event, int] = {}
        for idx in supporting:
            seq = self._events[idx]
            first = self._first_instance(seq, pattern)
            assert first is not None
            suffix_events = set(seq[first[-1] + 1 :])
            for event in suffix_events:
                counts[event] = counts.get(event, 0) + 1
        return counts

    def _backward_scan(self, pattern: Pattern, supporting: list[int]) -> tuple[set[Event], bool]:
        """Backward-extension events and whether BackScan pruning fires.

        Returns ``(backward_events, backscan_fires)``: ``backward_events`` is
        non-empty iff some event occurs in the i-th *maximum period* of every
        supporting sequence for some i (pattern not closed);
        ``backscan_fires`` is True iff the analogous condition holds for
        *semi-maximum periods* (subtree can be pruned).
        """
        n = len(pattern)
        backward_events: set[Event] = set()
        backscan_fires = False
        for i in range(n):
            common_max: set[Event] | None = None
            common_semi: set[Event] | None = None
            for idx in supporting:
                seq = self._events[idx]
                first = self._first_instance(seq, pattern)
                last_in_last = self._last_in_last(seq, pattern)
                assert first is not None and last_in_last is not None
                period_start = 0 if i == 0 else first[i - 1] + 1
                max_period = set(seq[period_start : last_in_last[i]])
                semi_period = set(seq[period_start : first[i]])
                common_max = max_period if common_max is None else (common_max & max_period)
                common_semi = semi_period if common_semi is None else (common_semi & semi_period)
                if not common_max and not common_semi:
                    break
            if common_max:
                backward_events |= common_max
            if common_semi:
                backscan_fires = True
        return backward_events, backscan_fires


def mine_closed_sequential(database: SequenceDatabase, min_sup: int, **kwargs) -> MiningResult:
    """Mine closed sequential patterns with BIDE (functional façade)."""
    return BIDE(min_sup, **kwargs).mine(database)
