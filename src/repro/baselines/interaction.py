"""Interaction-pattern support (El-Ramly, Stroulia & Sorenson, KDD 2002).

Interaction patterns describe user-usage scenarios of screen-based systems.
The support of a pattern is the number of *substrings* ``S[s..t]`` such that

* the pattern is contained in ``S[s..t]`` as a subsequence, and
* the substring's first event matches the pattern's first event and its last
  event matches the pattern's last event.

Occurrences may overlap arbitrarily.  In Example 1.1 pattern ``AB`` has
support 9: eight qualifying substrings in ``S1 = AABCDABB`` and one in
``S2 = ABCD``.
"""

from __future__ import annotations

from collections.abc import Sequence as PySequence

from repro.core.pattern import Pattern, as_pattern
from repro.db.database import SequenceDatabase
from repro.db.sequence import Sequence


def _contains_subsequence(events: PySequence, pattern: Pattern) -> bool:
    it = iter(events)
    return all(any(e == p for e in it) for p in pattern)


def interaction_occurrences_sequence(
    sequence: Sequence, pattern: Pattern | str | PySequence
) -> list[tuple[int, int]]:
    """All qualifying substrings ``(start, end)`` (1-based, inclusive)."""
    pattern = as_pattern(pattern)
    if pattern.is_empty():
        return []
    events = sequence.events
    first_event = pattern.at(1)
    last_event = pattern.at(len(pattern))
    starts = [i + 1 for i, e in enumerate(events) if e == first_event]
    ends = [i + 1 for i, e in enumerate(events) if e == last_event]
    occurrences: list[tuple[int, int]] = []
    for start in starts:
        for end in ends:
            if end - start + 1 < len(pattern):
                continue
            if _contains_subsequence(events[start - 1 : end], pattern):
                occurrences.append((start, end))
    return occurrences


def interaction_support_sequence(
    sequence: Sequence, pattern: Pattern | str | PySequence
) -> int:
    """Number of qualifying substrings of ``pattern`` in ``sequence``."""
    return len(interaction_occurrences_sequence(sequence, pattern))


def interaction_support(
    database: SequenceDatabase, pattern: Pattern | str | PySequence
) -> int:
    """Total interaction-pattern support of ``pattern`` over the database."""
    return sum(interaction_support_sequence(seq, pattern) for seq in database)
